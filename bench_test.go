// Benchmarks regenerating the measurable shape of every experiment in
// EXPERIMENTS.md. The paper itself reports no timings (it is a theory
// paper); these benchmarks characterize the constructions' costs and
// reproduce the paper's qualitative claims: who wins, what is bounded, what
// grows.
package waitfree_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"waitfree"
	"waitfree/internal/automata"
	"waitfree/internal/baseline"
	"waitfree/internal/check"
	"waitfree/internal/combine"
	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/interfere"
	"waitfree/internal/linearize"
	"waitfree/internal/model"
	"waitfree/internal/protocols"
	"waitfree/internal/queue"
	"waitfree/internal/randcons"
	"waitfree/internal/regconstruct"
	"waitfree/internal/registers"
	"waitfree/internal/seqspec"
	"waitfree/internal/shard"
	"waitfree/internal/synth"
	"waitfree/internal/wfstats"
)

// --- E1: Figure 1-1 lower bounds (exhaustive model checking cost) ---

func BenchmarkModelCheck(b *testing.B) {
	instances := map[string]protocols.Instance{
		"rmw2-tas":    protocols.RMW2(model.TestAndSet, 0, 0),
		"cas-3":       protocols.CAS(3),
		"queue2":      protocols.Queue2(),
		"augqueue-3":  protocols.AugQueue(3),
		"move-3":      protocols.Move(3),
		"memswap-3":   protocols.MemSwap(3),
		"assign-3":    protocols.Assign(3),
		"assign2p-m2": protocols.Assign2Phase(2),
		"broadcast-3": protocols.BroadcastConsensus(3),
	}
	for name, inst := range instances {
		b.Run(name, func(b *testing.B) {
			var configs int
			for i := 0; i < b.N; i++ {
				res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
				if !res.OK {
					b.Fatal(res.Violation)
				}
				configs = res.Configs
			}
			b.ReportMetric(float64(configs), "configs")
		})
	}
}

// --- E2/E4/E6/E12: impossibility synthesis (bounded exhaustive search) ---

func BenchmarkSynth(b *testing.B) {
	cases := map[string]struct {
		obj    model.Object
		params synth.Params
	}{
		"registers-2p-d2": {
			obj:    model.NewMemory("rw", make([]model.Value, 2)),
			params: synth.Params{Procs: 2, Depth: 2},
		},
		"tas-3p-d2": {
			obj: model.NewMemory("tas", []model.Value{0},
				model.WithRMW(model.TestAndSet), model.WithoutRW()),
			params: synth.Params{Procs: 3, Depth: 2},
		},
		"channels-2p-d2": {
			obj:    model.NewChannels("p2p", 2),
			params: synth.Params{Procs: 2, Depth: 2},
		},
	}
	for name, c := range cases {
		b.Run(name, func(b *testing.B) {
			var nodes int64
			for i := 0; i < b.N; i++ {
				res := synth.Search(c.obj, c.params)
				if res.Found || !res.Complete {
					b.Fatalf("unexpected: %s", res)
				}
				nodes = res.Nodes
			}
			b.ReportMetric(float64(nodes), "nodes")
		})
	}
}

// --- E3/E5/E7-E11: native consensus protocols, latency per Decide ---

func benchConsensus(b *testing.B, n int, mk func() consensus.Object) {
	b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			obj := mk()
			var wg sync.WaitGroup
			for p := 0; p < n; p++ {
				p := p
				wg.Add(1)
				go func() {
					defer wg.Done()
					obj.Decide(p, int64(p))
				}()
			}
			wg.Wait()
		}
	})
}

func BenchmarkConsensus(b *testing.B) {
	families := []struct {
		name string
		mk   func(n int) consensus.Object
	}{
		{"cas", func(n int) consensus.Object { return consensus.NewCAS(n) }},
		{"augqueue", func(n int) consensus.Object { return consensus.NewAugQueue(n) }},
		{"move", func(n int) consensus.Object { return consensus.NewMove(n) }},
		{"memswap", func(n int) consensus.Object { return consensus.NewMemSwap(n) }},
		{"assign", func(n int) consensus.Object { return consensus.NewAssign(n) }},
	}
	for _, f := range families {
		f := f
		b.Run(f.name, func(b *testing.B) {
			for _, n := range []int{2, 8, 32} {
				n := n
				benchConsensus(b, n, func() consensus.Object { return f.mk(n) })
			}
		})
	}
	b.Run("rmw2-tas", func(b *testing.B) {
		benchConsensus(b, 2, func() consensus.Object { return consensus.NewTAS2() })
	})
	b.Run("queue2", func(b *testing.B) {
		benchConsensus(b, 2, func() consensus.Object { return consensus.NewQueue2() })
	})
	b.Run("assign2phase", func(b *testing.B) {
		benchConsensus(b, 8, func() consensus.Object { return consensus.NewAssign2Phase(5) })
	})
}

// --- E4: the Theorem 6 interference decision procedure ---

func BenchmarkInterference(b *testing.B) {
	for _, d := range []int{8, 16, 32} {
		b.Run(fmt.Sprintf("domain=%d", d), func(b *testing.B) {
			set := interfere.ClassicalSet(d)
			for i := 0; i < b.N; i++ {
				if !interfere.Check(set).Interfering {
					b.Fatal("classical set must interfere")
				}
			}
		})
	}
}

// benchChunks splits b.N into chunks of at most chunk operations, calling
// rebuild off the clock before each chunk and run on the clock with the
// chunk's size. The anchored log retains every node, so rebuilding the
// object periodically keeps memory flat as b.N scales into the millions;
// the measured steady-state per-op cost is unaffected.
func benchChunks(b *testing.B, chunk int, rebuild func(), run func(ops int)) {
	remaining := b.N
	b.ResetTimer()
	for remaining > 0 {
		ops := remaining
		if ops > chunk {
			ops = chunk
		}
		remaining -= ops
		b.StopTimer()
		rebuild()
		b.StartTimer()
		run(ops)
	}
}

// --- E14/E15: fetch-and-cons, constant-time vs consensus rounds ---

func BenchmarkFetchAndCons(b *testing.B) {
	const n = 4
	makers := map[string]func() core.FetchAndCons{
		"swap": func() core.FetchAndCons { return core.NewSwapFAC() },
		"consensus-cas": func() core.FetchAndCons {
			return core.NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
		},
		"consensus-memswap": func() core.FetchAndCons {
			return core.NewConsFAC(n, func() consensus.Object { return consensus.NewMemSwap(n) })
		},
	}
	const facChunk = 200_000
	for name, mk := range makers {
		b.Run(name+"/sequential", func(b *testing.B) {
			var fac core.FetchAndCons
			var seq int64
			b.ReportAllocs()
			benchChunks(b, facChunk, func() { fac = mk() }, func(ops int) {
				for i := 0; i < ops; i++ {
					seq++
					fac.FetchAndCons(0, &core.Entry{Pid: 0, Seq: seq})
				}
			})
		})
		b.Run(name+"/contended", func(b *testing.B) {
			type facBox struct{ fac core.FetchAndCons }
			var cur atomic.Pointer[facBox]
			cur.Store(&facBox{fac: mk()})
			var total atomic.Int64
			var seq [n]int64
			var pid sync.Map
			var next int32
			var mu sync.Mutex
			work := func(p int, s *int64) {
				// Rotate the shared list periodically so memory stays flat.
				if total.Add(1)%facChunk == 0 {
					cur.Store(&facBox{fac: mk()})
				}
				*s++
				cur.Load().fac.FetchAndCons(p, &core.Entry{Pid: p, Seq: *s})
			}
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				mu.Lock()
				p := int(next) % n
				next++
				mu.Unlock()
				if _, loaded := pid.LoadOrStore(p, true); loaded {
					// more parallel workers than pids: stay safe, reuse pid 0
					// under a lock to preserve the per-pid sequential contract
					for pb.Next() {
						mu.Lock()
						work(0, &seq[0])
						mu.Unlock()
					}
					return
				}
				for pb.Next() {
					work(p, &seq[p])
				}
			})
		})
	}
}

// --- E13/E16/E18: the universal construction ---

func BenchmarkUniversal(b *testing.B) {
	const n = 4
	type cfg struct {
		name  string
		mk    func() core.FetchAndCons
		opts  []core.Option
		chunk int
	}
	cfgs := []cfg{
		{name: "swap/truncated", mk: func() core.FetchAndCons { return core.NewSwapFAC() }},
		// Untruncated replay cost grows with the log, so its chunks must
		// stay small or a single chunk is quadratic in the chunk size.
		{name: "swap/untruncated", mk: func() core.FetchAndCons { return core.NewSwapFAC() },
			opts: []core.Option{core.WithoutTruncation()}, chunk: 2_000},
		{name: "consensus-cas/truncated", mk: func() core.FetchAndCons {
			return core.NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
		}},
	}
	objects := []seqspec.Object{seqspec.Counter{}, seqspec.Queue{}, seqspec.KV{}, seqspec.Bank{Accounts: 8}}
	// The log list is immutable and anchored at the head, so one object
	// instance retains its entire history (see core.LiveRegion for the
	// paper's reclamation boundary); benchChunks keeps memory flat.
	for _, c := range cfgs {
		chunk := c.chunk
		if chunk == 0 {
			chunk = 100_000
		}
		for _, obj := range objects {
			b.Run(c.name+"/"+obj.Name(), func(b *testing.B) {
				var u *core.Universal
				var mean float64
				var max int64
				b.ReportAllocs()
				benchChunks(b, chunk,
					func() { u = core.NewUniversal(obj, c.mk(), n, c.opts...) },
					func(ops int) {
						var wg sync.WaitGroup
						per := ops/n + 1
						for p := 0; p < n; p++ {
							p := p
							wg.Add(1)
							go func() {
								defer wg.Done()
								for i := 0; i < per; i++ {
									// Alternate mutators per iteration so container
									// states stay small: snapshots clone the state,
									// and a monotonically growing object would make
									// each snapshot O(state) — a property of the
									// workload, not the construction.
									u.Invoke(p, benchOp(obj.Name(), p*per+i))
								}
							}()
						}
						wg.Wait()
						_, mean, max = u.ReplayStats()
					})
				b.ReportMetric(mean, "replay-mean")
				b.ReportMetric(float64(max), "replay-max")
			})
		}
	}
}

func benchOp(object string, k int) seqspec.Op {
	switch object {
	case "counter":
		return seqspec.Op{Kind: "inc"}
	case "queue":
		if k%2 == 0 {
			return seqspec.Op{Kind: "enq", Args: []int64{int64(k)}}
		}
		return seqspec.Op{Kind: "deq"}
	case "kv":
		return seqspec.Op{Kind: "put", Args: []int64{int64(k % 8), int64(k)}}
	case "bank":
		return seqspec.Op{Kind: "transfer", Args: []int64{int64(k % 8), int64((k + 1) % 8), 1}}
	}
	return seqspec.Op{Kind: "inc"}
}

// --- PR1 perf layer: read fast path, tunable snapshots, sharded front end ---

// benchRNG is a per-worker linear congruential generator: deterministic,
// allocation-free op selection inside timed loops.
type benchRNG uint64

func (g *benchRNG) next() uint64 {
	*g = *g*6364136223846793005 + 1442695040888963407
	return uint64(*g >> 33)
}

// runReadMix drives ops operations split across n worker pids, each doing
// pct% gets (read-only) and otherwise puts, over a keyspace of keys.
func runReadMix(n, ops, pct int, keys int64, invoke func(int, seqspec.Op) int64) {
	var wg sync.WaitGroup
	per := ops/n + 1
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			rng := benchRNG(p + 1)
			for i := 0; i < per; i++ {
				r := rng.next()
				key := int64(r) % keys
				if int((r>>10)%100) < pct {
					invoke(p, seqspec.Op{Kind: "get", Args: []int64{key}})
				} else {
					invoke(p, seqspec.Op{Kind: "put", Args: []int64{key, int64(r)}})
				}
			}
		}()
	}
	wg.Wait()
}

// BenchmarkReadMix measures the read fast path against the seed write path
// (every op pays cons + snapshot) on a KV under read-dominated and mixed
// workloads. fastpath/reads=100 vs writepath/reads=100 is the acceptance
// comparison: read-only ns/op with and without the fast path.
func BenchmarkReadMix(b *testing.B) {
	const n = 8
	const keys = 64
	modes := []struct {
		name string
		opts []core.Option
	}{
		{name: "fastpath"},
		{name: "writepath", opts: []core.Option{core.WithoutFastReads()}},
	}
	for _, mode := range modes {
		for _, pct := range []int{100, 95, 50} {
			b.Run(fmt.Sprintf("kv/%s/reads=%d", mode.name, pct), func(b *testing.B) {
				var u *core.Universal
				var fastTotal int64
				var mean float64
				b.ReportAllocs()
				benchChunks(b, 100_000,
					func() {
						if u != nil {
							fastTotal += u.FastReads()
						}
						u = core.NewUniversal(seqspec.KV{}, core.NewSwapFAC(), n, mode.opts...)
						for k := int64(0); k < keys; k++ {
							u.Invoke(0, seqspec.Op{Kind: "put", Args: []int64{k, k}})
						}
					},
					func(ops int) {
						runReadMix(n, ops, pct, keys, u.Invoke)
						_, mean, _ = u.ReplayStats()
					})
				fastTotal += u.FastReads()
				b.ReportMetric(float64(fastTotal)/float64(b.N), "fast-reads/op")
				b.ReportMetric(mean, "replay-mean")
			})
		}
	}
}

// BenchmarkSnapshotInterval sweeps WithSnapshotInterval(k) under a pure
// write workload on clone-heavy states: larger k amortizes the per-op
// Clone, at the cost of longer replays (replay-mean grows toward n·k).
func BenchmarkSnapshotInterval(b *testing.B) {
	const n = 4
	writeOp := func(object string, i int) seqspec.Op {
		if object == "bank" {
			return seqspec.Op{Kind: "transfer", Args: []int64{int64(i % 64), int64((i + 1) % 64), 1}}
		}
		return seqspec.Op{Kind: "put", Args: []int64{int64(i % 256), int64(i)}}
	}
	objects := []seqspec.Object{seqspec.KV{}, seqspec.Bank{Accounts: 64}}
	for _, obj := range objects {
		for _, k := range []int{1, 4, 16, 64} {
			b.Run(fmt.Sprintf("%s/k=%d", obj.Name(), k), func(b *testing.B) {
				var u *core.Universal
				var mean float64
				b.ReportAllocs()
				benchChunks(b, 100_000,
					func() { u = core.NewUniversal(obj, core.NewSwapFAC(), n, core.WithSnapshotInterval(k)) },
					func(ops int) {
						var wg sync.WaitGroup
						per := ops/n + 1
						for p := 0; p < n; p++ {
							p := p
							wg.Add(1)
							go func() {
								defer wg.Done()
								for i := 0; i < per; i++ {
									u.Invoke(p, writeOp(obj.Name(), p*per+i))
								}
							}()
						}
						wg.Wait()
						_, mean, _ = u.ReplayStats()
					})
				b.ReportMetric(mean, "replay-mean")
			})
		}
	}
}

// BenchmarkShardScaling measures the sharded KV front end at S ∈ {1,2,4,8}
// under the 95/5 read mix: near-linear scaling for a key-partitionable
// workload, versus the single shared log at S=1.
func BenchmarkShardScaling(b *testing.B) {
	const n = 8
	const keys = 1024
	for _, s := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d/reads=95", s), func(b *testing.B) {
			var kv *shard.Sharded
			var fastTotal int64
			b.ReportAllocs()
			benchChunks(b, 200_000,
				func() {
					if kv != nil {
						fastTotal += kv.FastReads()
					}
					kv = shard.NewKV(s, n, func() core.FetchAndCons { return core.NewSwapFAC() })
					for k := int64(0); k < keys; k++ {
						kv.Invoke(0, seqspec.Op{Kind: "put", Args: []int64{k, k}})
					}
				},
				func(ops int) { runReadMix(n, ops, 95, keys, kv.Invoke) })
			fastTotal += kv.FastReads()
			b.ReportMetric(float64(fastTotal)/float64(b.N), "fast-reads/op")
		})
	}
}

// --- PR5 contention layer: helping-based batching under b.RunParallel ---

// benchParallelPids drives fn under b.RunParallel while preserving the
// per-pid sequential contract: workers 1..n-1 each own their pid
// exclusively, while worker 0 — and any workers beyond n, since RunParallel
// spawns GOMAXPROCS goroutines — share pid 0 under a lock. The -cpu flag
// therefore sets the real writer concurrency (up to n), which is what the
// contended rows in BENCH_PR5.json sweep.
func benchParallelPids(b *testing.B, n int, fn func(pid, i int)) {
	var next int32
	var mu sync.Mutex
	b.RunParallel(func(pb *testing.PB) {
		mu.Lock()
		w := int(next)
		next++
		mu.Unlock()
		p := w % n
		i := w // stride-n op streams keep workers decorrelated
		if p == 0 || w >= n {
			for pb.Next() {
				mu.Lock()
				fn(0, i)
				mu.Unlock()
				i += n
			}
			return
		}
		for pb.Next() {
			fn(p, i)
			i += n
		}
	})
}

// BenchmarkUniversalContended is the batching acceptance benchmark: the pure
// write path under real parallelism (run with -cpu 1,4,8), batched against
// unbatched. At -cpu 1 the two must be within noise of each other (the
// inflight probe keeps the help window off the uncontended path); at -cpu 8
// on the kv spec batched must be >= 2x unbatched ops/sec — one executor
// replay and one snapshot clone amortized across the batch.
func BenchmarkUniversalContended(b *testing.B) {
	const n = 8
	const chunk = 200_000
	modes := []struct {
		name string
		opts []core.Option
	}{
		{name: "batched", opts: []core.Option{core.WithBatching()}},
		{name: "unbatched"},
		// The log-GC row prices the low-water-mark protocol on the contended
		// write path: one padded register store per op, a min-scan plus
		// truncation walk every DefaultGCEvery-th op (or once per batch).
		{name: "batched-gc", opts: []core.Option{core.WithBatching(), core.WithLogGC(core.DefaultGCEvery)}},
	}
	// The kv rows write across 256 keys (the BenchmarkSnapshotInterval
	// workload): a state whose per-op snapshot clone is the dominant cost is
	// exactly what one-clone-per-batch amortizes. The counter rows are the
	// cheap-state control.
	contendedOp := func(object string, i int) seqspec.Op {
		if object == "kv" {
			return seqspec.Op{Kind: "put", Args: []int64{int64(i % 256), int64(i)}}
		}
		return benchOp(object, i)
	}
	objects := []seqspec.Object{seqspec.Counter{}, seqspec.KV{}}
	for _, mode := range modes {
		for _, obj := range objects {
			b.Run(mode.name+"/"+obj.Name(), func(b *testing.B) {
				// One registry shared across rotations aggregates the
				// helping metrics over the whole run.
				reg := wfstats.NewRegistry()
				opts := append([]core.Option{core.WithMetrics(reg)}, mode.opts...)
				type box struct{ u *core.Universal }
				mkbox := func() *box {
					return &box{u: core.NewUniversal(obj, core.NewSwapFAC(), n, opts...)}
				}
				var cur atomic.Pointer[box]
				cur.Store(mkbox())
				var total atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				benchParallelPids(b, n, func(p, i int) {
					// Rotate the anchored log periodically so memory stays
					// flat; stragglers finish on the old instance, which
					// stays valid.
					if total.Add(1)%chunk == 0 {
						cur.Store(mkbox())
					}
					cur.Load().u.Invoke(p, contendedOp(obj.Name(), i))
				})
				b.StopTimer()
				u := cur.Load().u
				b.ReportMetric(float64(u.Helped())/float64(b.N), "helped/op")
				if batches, mean, _ := u.BatchStats(); batches > 0 {
					b.ReportMetric(mean, "batch-mean")
				}
			})
		}
	}
}

// BenchmarkShardedContended: the sharded KV front end under b.RunParallel
// (run with -cpu 1,4,8) on write-heavy and balanced read mixes, with the
// facade's default batching against WithoutBatching. Sharding splits the
// writers across logs; batching absorbs the contention that remains within
// each shard.
func BenchmarkShardedContended(b *testing.B) {
	const n = 8
	const keys = 1024
	const chunk = 200_000
	modes := []struct {
		name string
		opts []core.Option
	}{
		{name: "batched"},
		{name: "unbatched", opts: []core.Option{core.WithoutBatching()}},
	}
	for _, mode := range modes {
		for _, pct := range []int{0, 50} {
			b.Run(fmt.Sprintf("kv/%s/reads=%d", mode.name, pct), func(b *testing.B) {
				opts := append([]core.Option{core.WithBatching()}, mode.opts...)
				mkkv := func() *shard.Sharded {
					return shard.NewKV(4, n, func() core.FetchAndCons { return core.NewSwapFAC() }, opts...)
				}
				type box struct{ kv *shard.Sharded }
				var cur atomic.Pointer[box]
				cur.Store(&box{kv: mkkv()})
				var total atomic.Int64
				b.ReportAllocs()
				b.ResetTimer()
				benchParallelPids(b, n, func(p, i int) {
					if total.Add(1)%chunk == 0 {
						cur.Store(&box{kv: mkkv()})
					}
					h := uint64(i)*0x9e3779b97f4a7c15 + 0xbf58476d1ce4e5b9
					key := int64((h >> 33) % keys)
					var op seqspec.Op
					if int((h>>10)%100) < pct {
						op = seqspec.Op{Kind: "get", Args: []int64{key}}
					} else {
						op = seqspec.Op{Kind: "put", Args: []int64{key, int64(h % 1024)}}
					}
					cur.Load().kv.Invoke(p, op)
				})
				b.StopTimer()
				kv := cur.Load().kv
				b.ReportMetric(float64(kv.Helped())/float64(b.N), "helped/op")
			})
		}
	}
}

// BenchmarkSteadyStateHeap is the bounded-memory acceptance benchmark: one
// long-lived universal object (no instance rotation — the log is never
// thrown away) driven round-robin by every process, with the live heap
// measured after a forced collection at the end. With the log GC on, live
// heap is the O(n·snapEvery + n·gcEvery) region regardless of op count;
// with it off, the anchored log retains every entry, node and snapshot ever
// consed, so live heap grows linearly with b.N. Run with
// -benchtime=10000000x to pin the 10M-op steady state; the gc row must come
// out >= 10x under the nogc row there. heap-bytes is the retained delta
// (post-GC HeapAlloc, end minus start).
func BenchmarkSteadyStateHeap(b *testing.B) {
	const n = 4
	modes := []struct {
		name string
		opts []core.Option
	}{
		{name: "gc", opts: []core.Option{core.WithLogGC(core.DefaultGCEvery)}},
		{name: "nogc"},
	}
	for _, mode := range modes {
		b.Run("counter/"+mode.name, func(b *testing.B) {
			u := core.NewUniversal(seqspec.Counter{}, core.NewSwapFAC(), n, mode.opts...)
			var before, after runtime.MemStats
			runtime.GC()
			runtime.ReadMemStats(&before)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				u.Invoke(i%n, seqspec.Op{Kind: "inc"})
			}
			b.StopTimer()
			runtime.GC()
			runtime.ReadMemStats(&after)
			b.ReportMetric(float64(int64(after.HeapAlloc)-int64(before.HeapAlloc)), "heap-bytes")
			runtime.KeepAlive(u)
		})
	}
}

// --- PR3 observability: wfstats record cost and end-to-end overhead ---

// BenchmarkWfstatsRecord measures the raw record paths of the metrics layer:
// one atomic add for a counter, a handful for a histogram, one predicated
// load for the nil no-op mode. All must be allocation-free.
func BenchmarkWfstatsRecord(b *testing.B) {
	b.Run("counter", func(b *testing.B) {
		c := wfstats.NewRegistry().Counter("c")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
		}
	})
	b.Run("counter-parallel", func(b *testing.B) {
		c := wfstats.NewRegistry().Counter("c")
		b.RunParallel(func(pb *testing.PB) {
			for pb.Next() {
				c.Inc()
			}
		})
	})
	b.Run("histogram", func(b *testing.B) {
		h := wfstats.NewRegistry().Histogram("h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			h.Observe(int64(i & 1023))
		}
	})
	b.Run("nil-noop", func(b *testing.B) {
		var r *wfstats.Registry
		c := r.Counter("c")
		h := r.Histogram("h")
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			c.Inc()
			h.Observe(int64(i))
		}
	})
}

// BenchmarkWfstatsOverhead is the acceptance comparison for the PR 3
// observability layer: the KV read fast path — the hottest path in the tree
// — with the construction recording into a live registry (the default)
// versus the WithMetrics(nil) no-op mode. The two ns/op must stay within
// ~10% of each other.
func BenchmarkWfstatsOverhead(b *testing.B) {
	const n = 8
	const keys = 64
	modes := []struct {
		name string
		opts []core.Option
	}{
		{name: "instrumented"},
		{name: "noop", opts: []core.Option{core.WithMetrics(nil)}},
	}
	for _, mode := range modes {
		b.Run("kv/reads=100/"+mode.name, func(b *testing.B) {
			var u *core.Universal
			b.ReportAllocs()
			benchChunks(b, 100_000,
				func() {
					u = core.NewUniversal(seqspec.KV{}, core.NewSwapFAC(), n, mode.opts...)
					for k := int64(0); k < keys; k++ {
						u.Invoke(0, seqspec.Op{Kind: "put", Args: []int64{k, k}})
					}
				},
				func(ops int) { runReadMix(n, ops, 100, keys, u.Invoke) })
		})
	}
}

// --- E17: the Section 1 motivation — locks vs wait-free under stalls ---

func BenchmarkMotivation(b *testing.B) {
	const n = 4
	stall := 200 * time.Microsecond

	b.Run("lock-with-stalls", func(b *testing.B) {
		obj := baseline.NewLocked(seqspec.Counter{})
		var k int
		obj.CriticalSection = func(pid int) {
			if pid == 0 {
				k++
				if k%10 == 0 {
					time.Sleep(stall)
				}
			}
		}
		benchInvokers(b, n, obj.Invoke)
	})
	b.Run("waitfree-with-stalls", func(b *testing.B) {
		fac := &stallFAC{inner: core.NewSwapFAC(), stall: stall}
		u := core.NewUniversal(seqspec.Counter{}, fac, n)
		benchInvokers(b, n, u.Invoke)
	})
	b.Run("lock-no-stalls", func(b *testing.B) {
		obj := baseline.NewLocked(seqspec.Counter{})
		benchInvokers(b, n, obj.Invoke)
	})
	b.Run("waitfree-no-stalls", func(b *testing.B) {
		u := core.NewUniversal(seqspec.Counter{}, core.NewSwapFAC(), n)
		benchInvokers(b, n, u.Invoke)
	})
}

type stallFAC struct {
	inner core.FetchAndCons
	stall time.Duration
	mu    sync.Mutex
	k     int
}

func (s *stallFAC) FetchAndCons(pid int, e *core.Entry) *core.Node {
	out := s.inner.FetchAndCons(pid, e)
	if pid == 0 {
		s.mu.Lock()
		s.k++
		hit := s.k%10 == 0
		s.mu.Unlock()
		if hit {
			time.Sleep(s.stall)
		}
	}
	return out
}

func (s *stallFAC) Observe() *core.Node { return s.inner.Observe() }

// benchInvokers measures the healthy workers' throughput: b.N operations
// split across workers 1..n-1 while worker 0 (the staller) loops until they
// finish.
func benchInvokers(b *testing.B, n int, invoke func(int, seqspec.Op) int64) {
	var stop sync.WaitGroup
	var done bool
	var mu sync.Mutex
	stop.Add(1)
	go func() { // worker 0: the potential staller
		defer stop.Done()
		for {
			mu.Lock()
			d := done
			mu.Unlock()
			if d {
				return
			}
			invoke(0, seqspec.Op{Kind: "inc"})
		}
	}()
	var wg sync.WaitGroup
	per := b.N/(n-1) + 1
	b.ResetTimer()
	for p := 1; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				invoke(p, seqspec.Op{Kind: "inc"})
			}
		}()
	}
	wg.Wait()
	b.StopTimer()
	mu.Lock()
	done = true
	mu.Unlock()
	stop.Wait()
}

// --- E18: Corollary 27 — consensus rounds per fetch-and-cons vs n ---

func BenchmarkConsFACScaling(b *testing.B) {
	for _, n := range []int{2, 4, 8, 16} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var fac *core.ConsFAC
			var u *core.Universal
			var rounds float64
			benchChunks(b, 100_000,
				func() {
					fac = core.NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
					u = core.NewUniversal(seqspec.Counter{}, fac, n)
				},
				func(ops int) {
					var wg sync.WaitGroup
					per := ops/n + 1
					for p := 0; p < n; p++ {
						p := p
						wg.Add(1)
						go func() {
							defer wg.Done()
							for i := 0; i < per; i++ {
								u.Invoke(p, seqspec.Op{Kind: "inc"})
							}
						}()
					}
					wg.Wait()
					rounds = fac.RoundsPerOp()
				})
			b.ReportMetric(rounds, "rounds/op")
		})
	}
}

// --- Substrate micro-benchmarks ---

func BenchmarkSubstrate(b *testing.B) {
	b.Run("lamport-queue", func(b *testing.B) {
		q := queue.NewLamport(1024)
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				for q.Deq() == queue.Empty {
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			for !q.Enq(int64(i)) {
			}
		}
		wg.Wait()
	})
	b.Run("locked-queue", func(b *testing.B) {
		q := queue.NewFIFO()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < b.N; i++ {
				for q.Deq() == queue.Empty {
				}
			}
		}()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q.Enq(int64(i))
		}
		wg.Wait()
	})
}

// --- Linearizability checker cost ---

func BenchmarkLinearizeCheck(b *testing.B) {
	const n, opsPer = 3, 8
	u := waitfree.New(waitfree.Queue{}, waitfree.NewSwapFetchAndCons(), n)
	var rec linearize.Recorder
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				op := benchOp("queue", p+i)
				ts := rec.Invoke()
				resp := u.Invoke(p, op)
				rec.Complete(p, op, resp, ts)
			}
		}()
	}
	wg.Wait()
	h := rec.History()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if !linearize.Check(waitfree.Queue{}, h).OK {
			b.Fatal("history must be linearizable")
		}
	}
}

// --- E19: combining network vs direct fetch-and-add under contention ---

func BenchmarkCombining(b *testing.B) {
	const n = 8
	b.Run("network", func(b *testing.B) {
		net := combine.New(n, 0)
		defer net.Close()
		var wg sync.WaitGroup
		per := b.N/n + 1
		b.ResetTimer()
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					net.FetchAndAdd(p, 1)
				}
			}()
		}
		wg.Wait()
		b.StopTimer()
		waves, _ := net.Stats()
		b.ReportMetric(float64(b.N)/float64(waves), "ops/wave")
	})
	b.Run("direct-cas-loop", func(b *testing.B) {
		r := registers.NewRMW(0)
		var wg sync.WaitGroup
		per := b.N/n + 1
		b.ResetTimer()
		for p := 0; p < n; p++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := 0; i < per; i++ {
					r.FetchAndAdd(1)
				}
			}()
		}
		wg.Wait()
	})
}

// --- E20: randomized register-only consensus ---

func BenchmarkRandomizedConsensus(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		n := n
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				obj := randcons.New(n, int64(i))
				var wg sync.WaitGroup
				for p := 0; p < n; p++ {
					p := p
					wg.Add(1)
					go func() {
						defer wg.Done()
						obj.Decide(p, int64(p))
					}()
				}
				wg.Wait()
			}
		})
	}
}

// --- E21: constructed registers vs hardware atomics ---

func BenchmarkRegisterConstructions(b *testing.B) {
	b.Run("hardware-atomic", func(b *testing.B) {
		var r registers.Atomic
		for i := 0; i < b.N; i++ {
			r.Store(int64(i))
			_ = r.Load()
		}
	})
	b.Run("atomic-swsr-from-regular", func(b *testing.B) {
		r := regconstruct.NewAtomicSWSRSim(0)
		for i := 0; i < b.N; i++ {
			r.Write(int64(i % 1000))
			_ = r.Read()
		}
	})
	b.Run("regular-16-from-safe-bits", func(b *testing.B) {
		r := regconstruct.NewRegularKFromSafe(16, 0)
		for i := 0; i < b.N; i++ {
			r.Write(int64(i % 16))
			_ = r.Read()
		}
	})
	b.Run("atomic-mrmw-n4", func(b *testing.B) {
		r := regconstruct.NewAtomicMRMW(4, 0)
		for i := 0; i < b.N; i++ {
			r.WriteAt(i%4, int64(i%1000))
			_ = r.ReadAt((i + 1) % 4)
		}
	})
}

// --- E22: the Section 2 automata executor ---

func BenchmarkAutomataSystem(b *testing.B) {
	script := make([]seqspec.Op, 20)
	for i := range script {
		if i%2 == 0 {
			script[i] = seqspec.Op{Kind: "enq", Args: []int64{int64(i)}}
		} else {
			script[i] = seqspec.Op{Kind: "deq"}
		}
	}
	for _, sched := range []string{"sequential", "concurrent"} {
		sched := sched
		b.Run(sched, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p1 := &automata.Process{ProcName: "P1", ObjName: "Q", Script: script}
				p2 := &automata.Process{ProcName: "P2", ObjName: "Q", Script: script}
				obj := automata.NewObject("Q", seqspec.Queue{})
				var s automata.Automaton
				if sched == "sequential" {
					s = &automata.SeqScheduler{}
				} else {
					s = &automata.ConcScheduler{}
				}
				sys := automata.NewSystem(p1, p2, obj, s)
				sys.RunRandom(10_000, int64(i))
			}
		})
	}
}
