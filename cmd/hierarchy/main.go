// Command hierarchy regenerates Figure 1-1 of Herlihy's PODC 1988 paper —
// the impossibility/universality hierarchy — from machine evidence:
// exhaustively model-checked protocols for the lower bounds, and the
// interference decision procedure plus (with -full) bounded exhaustive
// protocol synthesis for the upper bounds.
//
// Usage:
//
//	hierarchy          # fast evidence (seconds)
//	hierarchy -full    # also run the synthesis searches (minutes)
package main

import (
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"waitfree/internal/hierarchy"
)

func main() {
	full := flag.Bool("full", false, "run the bounded synthesis searches (minutes of CPU)")
	verbose := flag.Bool("v", false, "print progress while computing evidence")
	flag.Parse()

	opts := hierarchy.Options{Synthesis: *full}
	if *verbose {
		opts.Progress = func(s string) { fmt.Fprintln(os.Stderr, "... "+s) }
	}
	rows := hierarchy.Table(opts)

	fmt.Println("Figure 1-1: Impossibility and Universality Hierarchy (Herlihy, PODC 1988)")
	fmt.Println()
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "CONSENSUS#\tOBJECT")
	for _, r := range rows {
		fmt.Fprintf(tw, "%s\t%s\n", r.Level, r.Object)
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	fmt.Println()
	fmt.Println("Evidence:")
	for _, r := range rows {
		fmt.Printf("\n%s (consensus number %s)\n", r.Object, r.Level)
		fmt.Printf("  lower [%s] %s\n", r.Lower.Kind, r.Lower.Detail)
		fmt.Printf("  upper [%s] %s\n", r.Upper.Kind, r.Upper.Detail)
	}
}
