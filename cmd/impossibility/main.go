// Command impossibility runs the machine-checkable impossibility evidence
// for the paper's negative results: bounded exhaustive protocol synthesis
// (no wait-free consensus protocol exists within the searched bounds), the
// Theorem 6 interference decision procedure, and the valency analysis that
// mirrors the proofs' critical-state structure.
//
// Usage:
//
//	impossibility -object registers   # Theorem 2
//	impossibility -object queue       # Theorem 11
//	impossibility -object interfering # Theorem 6 / Corollary 8
//	impossibility -object channels    # Section 3.1 (Dolev-Dwork-Stockmeyer)
//	impossibility -object valency     # critical-state analysis on queue2
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree/internal/check"
	"waitfree/internal/interfere"
	"waitfree/internal/model"
	"waitfree/internal/protocols"
	"waitfree/internal/synth"
)

func main() {
	object := flag.String("object", "registers",
		"which impossibility to check: registers | queue | interfering | channels | valency")
	depth := flag.Int("depth", 0, "override the per-process operation depth")
	procs := flag.Int("procs", 0, "override the process count")
	budget := flag.Int64("budget", 0, "override the search node budget")
	flag.Parse()

	if err := run(*object, *depth, *procs, *budget); err != nil {
		fmt.Fprintln(os.Stderr, "impossibility:", err)
		os.Exit(1)
	}
}

func run(object string, depth, procs int, budget int64) error {
	pick := func(def int, override int) int {
		if override > 0 {
			return override
		}
		return def
	}
	report := func(claim string, res synth.Result) {
		fmt.Printf("%s\n  verdict: %s\n", claim, res)
		if res.Found {
			fmt.Println("  !!! the paper's theorem would be contradicted; found protocol:")
			fmt.Print(synth.FormatStrategy(res.Strategy))
		}
	}

	switch object {
	case "registers":
		d := pick(2, depth)
		n := pick(2, procs)
		mem := model.NewMemory("rw", make([]model.Value, 2))
		fmt.Printf("Theorem 2: no wait-free %d-process consensus from atomic R/W registers.\n", n)
		fmt.Printf("Searching all deterministic protocols: 2 registers, values {0,1}, depth %d...\n", d)
		report("", synth.Search(mem, synth.Params{Procs: n, Depth: d, NodeBudget: budget}))

	case "queue":
		d := pick(2, depth)
		n := pick(3, procs)
		q := model.NewQueue("queue", nil)
		fmt.Printf("Theorem 11: no wait-free %d-process consensus from a FIFO queue.\n", n)
		fmt.Printf("Searching all deterministic protocols: one queue, items {0,1}, depth %d...\n", d)
		report("", synth.Search(q, synth.Params{Procs: n, Depth: d, NodeBudget: budget}))

	case "interfering":
		fmt.Println("Theorem 6: interfering read-modify-write sets cannot solve 3-process consensus.")
		rep := interfere.Check(interfere.ClassicalSet(8))
		fmt.Printf("  classical set {read, write, test-and-set, swap, fetch-and-add} over domain 8:\n")
		fmt.Printf("  interfering = %v (%d triples checked)\n", rep.Interfering, rep.Pairs)
		repCAS := interfere.Check(append(interfere.ClassicalSet(8), interfere.CASFamily(8)...))
		fmt.Printf("  adding compare-and-swap: interfering = %v\n", repCAS.Interfering)
		if repCAS.Witness != nil {
			fmt.Printf("  witness: %s\n", repCAS.Witness)
		}
		d := pick(2, depth)
		swap := model.SwapRMW
		swap.Operands = [][2]model.Value{{0, model.None}, {1, model.None}}
		faa := model.FetchAndAdd
		faa.Operands = [][2]model.Value{{1, model.None}}
		mem := model.NewMemory("rmw-reg", []model.Value{0},
			model.WithRMW(model.TestAndSet, swap, faa), model.WithoutRW())
		fmt.Printf("Searching all 3-process protocols over {TAS, swap, FAA} at depth %d...\n", d)
		report("", synth.Search(mem, synth.Params{Procs: 3, Depth: d, NodeBudget: budget}))

	case "channels":
		d := pick(2, depth)
		ch := model.NewChannels("p2p", 2)
		fmt.Println("Section 3.1 (after Dolev-Dwork-Stockmeyer): point-to-point FIFO channels")
		fmt.Println("cannot solve 2-process wait-free consensus.")
		fmt.Printf("Searching all deterministic protocols at depth %d...\n", d)
		report("", synth.Search(ch, synth.Params{Procs: 2, Depth: d, NodeBudget: budget}))

	case "valency":
		fmt.Println("Valency analysis (the proof machinery of Theorems 2/6/11) on the")
		fmt.Println("two-process queue protocol of Theorem 9:")
		inst := protocols.Queue2()
		rep := check.Valency(inst.Proto, inst.Obj, []model.Value{0, 1})
		fmt.Printf("  %s\n", rep)
		for _, k := range rep.CriticalKeys {
			fmt.Println(rep.DescribeCritical(k))
		}

	default:
		return fmt.Errorf("unknown -object %q", object)
	}
	return nil
}
