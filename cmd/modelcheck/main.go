// Command modelcheck runs the exhaustive checker, the schedule fuzzer, or
// the valency analyzer on any of the paper's consensus protocols.
//
// Usage:
//
//	modelcheck -proto cas -n 3            # exhaustive, all input permutations
//	modelcheck -proto move -n 5 -fuzz 2000
//	modelcheck -proto queue2 -valency
//	modelcheck -list
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree/internal/check"
	"waitfree/internal/model"
	"waitfree/internal/protocols"
)

var registry = map[string]struct {
	make  func(n int) protocols.Instance
	fixed int // nonzero if the protocol has a fixed process count
	desc  string
}{
	"rmw-tas":      {make: func(int) protocols.Instance { return protocols.RMW2(model.TestAndSet, 0, 0) }, fixed: 2, desc: "Theorem 4: test-and-set, 2 processes"},
	"rmw-swap":     {make: func(int) protocols.Instance { return protocols.RMW2(model.SwapRMW, 1, 0) }, fixed: 2, desc: "Theorem 4: swap, 2 processes"},
	"rmw-faa":      {make: func(int) protocols.Instance { return protocols.RMW2(model.FetchAndAdd, 0, 0) }, fixed: 2, desc: "Theorem 4: fetch-and-add, 2 processes"},
	"cas":          {make: protocols.CAS, desc: "Theorem 7: compare-and-swap, n processes"},
	"queue2":       {make: func(int) protocols.Instance { return protocols.Queue2() }, fixed: 2, desc: "Theorem 9: FIFO queue, 2 processes"},
	"augqueue":     {make: protocols.AugQueue, desc: "Theorem 12: augmented queue, n processes"},
	"move":         {make: protocols.Move, desc: "Theorem 15: memory-to-memory move, n processes"},
	"memswap":      {make: protocols.MemSwap, desc: "Theorem 16: memory-to-memory swap, n processes"},
	"assign":       {make: protocols.Assign, desc: "Theorem 19: n-register assignment, n processes"},
	"assign2phase": {make: protocols.Assign2Phase, desc: "Theorems 20/21: m-register assignment, 2m-2 processes (pass -n m)"},
	"broadcast":    {make: protocols.BroadcastConsensus, desc: "Section 3.1: ordered broadcast, n processes"},
}

func main() {
	var (
		proto   = flag.String("proto", "", "protocol name (see -list)")
		n       = flag.Int("n", 3, "process count (or m for assign2phase)")
		fuzz    = flag.Int("fuzz", 0, "sample this many random schedules instead of exhausting")
		valency = flag.Bool("valency", false, "run the valency analysis instead of the checker")
		list    = flag.Bool("list", false, "list protocols")
	)
	flag.Parse()

	if *list || *proto == "" {
		fmt.Println("protocols:")
		for name, r := range registry {
			fmt.Printf("  %-14s %s\n", name, r.desc)
		}
		return
	}
	entry, ok := registry[*proto]
	if !ok {
		fmt.Fprintf(os.Stderr, "modelcheck: unknown protocol %q (try -list)\n", *proto)
		os.Exit(1)
	}
	if entry.fixed != 0 {
		*n = entry.fixed
	}
	inst := entry.make(*n)
	fmt.Printf("%s over %s\n", inst.Proto.Name(), inst.Obj.Name())

	switch {
	case *valency:
		nn := inst.Proto.Procs()
		inputs := make([]model.Value, nn)
		for i := range inputs {
			inputs[i] = model.Value(i)
		}
		rep := check.Valency(inst.Proto, inst.Obj, inputs)
		fmt.Println(rep)
		for _, k := range rep.CriticalKeys {
			fmt.Println(rep.DescribeCritical(k))
		}
	case *fuzz > 0:
		res := check.Fuzz(inst.Proto, inst.Obj, *fuzz, 1, check.Options{})
		report(res, fmt.Sprintf("%d random schedules", *fuzz))
	default:
		res := check.AllInputs(inst.Proto, inst.Obj, check.Options{})
		report(res, "all interleavings, all input permutations")
	}
}

func report(res check.Result, scope string) {
	if res.OK {
		fmt.Printf("OK (%s): configs=%d max-steps/process=%d decisions=%v\n",
			scope, res.Configs, res.MaxSteps, res.Decisions)
		return
	}
	fmt.Printf("VIOLATION: %v\n", res.Violation)
	os.Exit(1)
}
