// Command experiments runs the measurable experiments of EXPERIMENTS.md
// (E13–E18 plus the extensions) in one pass and prints a compact report:
// replay-length bounds, consensus rounds per operation, fetch-and-cons
// costs, the lock-vs-wait-free stall contrast, combining-network traffic,
// and randomized register-only consensus rounds.
//
// The verification experiments (exhaustive checking, synthesis) live in
// `go test` and `cmd/hierarchy` / `cmd/impossibility`.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"flag"
	"fmt"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"waitfree"
	"waitfree/internal/baseline"
	"waitfree/internal/combine"
	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/randcons"
	"waitfree/internal/seqspec"
	"waitfree/internal/wfstats"
)

func main() {
	n := flag.Int("n", 4, "worker processes")
	ops := flag.Int("ops", 2000, "operations per worker")
	flag.Parse()

	fmt.Printf("waitfree experiment report (n=%d, %d ops/worker)\n", *n, *ops)
	fmt.Println()
	e16Truncation(*n, *ops)
	e15e18Rounds(*n, *ops)
	e14FetchAndCons(*ops)
	e17Motivation(*n)
	e19Combining(*n, *ops)
	e20Randomized(*n)
	e29Metrics(*n, *ops)
}

func runWorkers(n, per int, invoke func(pid int, op seqspec.Op) int64, op func(p, i int) seqspec.Op) time.Duration {
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				invoke(p, op(p, i))
			}
		}()
	}
	wg.Wait()
	return time.Since(start)
}

func inc(p, i int) seqspec.Op { return seqspec.Op{Kind: "inc"} }

func e16Truncation(n, per int) {
	fmt.Println("E16: strongly wait-free truncation (Section 4.1)")
	for _, truncate := range []bool{true, false} {
		var opts []waitfree.Option
		label := "snapshots on "
		if !truncate {
			opts = append(opts, waitfree.WithoutTruncation())
			label = "snapshots off"
		}
		u := waitfree.New(waitfree.Counter{}, waitfree.NewSwapFetchAndCons(), n, opts...)
		d := runWorkers(n, per, u.Invoke, inc)
		_, mean, max := u.ReplayStats()
		fmt.Printf("  %s: %8v total, replay mean %7.1f max %5d (bound: n=%d with snapshots)\n",
			label, d.Round(time.Millisecond), mean, max, n)
	}
	fmt.Println()
}

func e15e18Rounds(n, per int) {
	fmt.Println("E15/E18: consensus rounds per fetch-and-cons (Figure 4-5; bound n+1)")
	for _, nn := range []int{2, n, 2 * n} {
		fac := core.NewConsFAC(nn, func() consensus.Object { return consensus.NewCAS(nn) })
		u := core.NewUniversal(seqspec.Counter{}, fac, nn)
		runWorkers(nn, per/2, u.Invoke, inc)
		fmt.Printf("  n=%2d: %.3f rounds/op (bound %d)\n", nn, fac.RoundsPerOp(), nn+1)
	}
	fmt.Println()
}

func e14FetchAndCons(per int) {
	fmt.Println("E14: constant-time fetch-and-cons from memory-to-memory swap (Figs 4-3/4-4)")
	// The operation itself is one primitive step; disable the garbage
	// collector during the probes so its list-proportional marking work
	// (absent from the paper's model) does not pollute the measurement.
	old := debug.SetGCPercent(-1)
	defer debug.SetGCPercent(old)
	fac := core.NewSwapFAC()
	var seq int64
	for _, size := range []int{1000, 10000, 100000} {
		for fac.Head() == nil || fac.Head().Len < size {
			seq++
			fac.FetchAndCons(0, &core.Entry{Pid: 0, Seq: seq})
		}
		runtime.GC()
		start := time.Now()
		const probe = 5000
		for i := 0; i < probe; i++ {
			seq++
			fac.FetchAndCons(0, &core.Entry{Pid: 0, Seq: seq})
		}
		fmt.Printf("  list length %6d: %6.0f ns/op (independent of length)\n",
			size, float64(time.Since(start).Nanoseconds())/probe)
	}
	fmt.Println()
}

func e17Motivation(n int) {
	fmt.Println("E17: a stalled process in a critical section vs wait-free (Section 1)")
	const stall = 10 * time.Millisecond
	const per = 150

	lock := baseline.NewLocked(seqspec.Counter{})
	var k int
	lock.CriticalSection = func(pid int) {
		if pid == 0 {
			k++
			if k%10 == 0 {
				time.Sleep(stall)
			}
		}
	}
	worst := func(invoke func(int, seqspec.Op) int64) time.Duration {
		var w atomic.Int64
		runWorkers(n, per, func(pid int, op seqspec.Op) int64 {
			s := time.Now()
			r := invoke(pid, op)
			if pid != 0 {
				if d := time.Since(s); int64(d) > w.Load() {
					w.Store(int64(d))
				}
			}
			return r
		}, inc)
		return time.Duration(w.Load())
	}
	lockWorst := worst(lock.Invoke)

	fac := &stallFAC{inner: core.NewSwapFAC(), stall: stall}
	u := core.NewUniversal(seqspec.Counter{}, fac, n)
	wfWorst := worst(u.Invoke)

	fmt.Printf("  worst healthy-worker op latency: lock-based %v, wait-free %v (stall %v)\n",
		lockWorst.Round(time.Microsecond), wfWorst.Round(time.Microsecond), stall)
	fmt.Println()
}

type stallFAC struct {
	inner core.FetchAndCons
	stall time.Duration
	k     atomic.Int64
}

func (s *stallFAC) FetchAndCons(pid int, e *core.Entry) *core.Node {
	out := s.inner.FetchAndCons(pid, e)
	if pid == 0 && s.k.Add(1)%10 == 0 {
		time.Sleep(s.stall)
	}
	return out
}

func (s *stallFAC) Observe() *core.Node { return s.inner.Observe() }

func e19Combining(n, per int) {
	fmt.Println("E19: combining network (Ultracomputer, Sections 1/5)")
	net := combine.New(n, 0)
	defer net.Close()
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				net.FetchAndAdd(p, 1)
			}
		}()
	}
	wg.Wait()
	waves, maxCombined := net.Stats()
	fmt.Printf("  %d fetch-and-adds reached the root memory in %d waves (max %d combined);\n",
		n*per, waves, maxCombined)
	fmt.Printf("  combining cuts root traffic %0.1fx — and changes nothing about the\n",
		float64(n*per)/float64(waves))
	fmt.Println("  consensus number: fetch-and-add stays at level 2 (Theorem 6).")
	fmt.Println()
}

func e20Randomized(n int) {
	fmt.Println("E20 (Section 5 future work): randomized consensus from registers only")
	const trials = 200
	var total, worst int64
	for trial := 0; trial < trials; trial++ {
		obj := randcons.New(n, int64(trial))
		var wg sync.WaitGroup
		for p := 0; p < n; p++ {
			p := p
			wg.Add(1)
			go func() {
				defer wg.Done()
				obj.Decide(p, int64(p))
			}()
		}
		wg.Wait()
		r := obj.Rounds()
		total += r
		if r > worst {
			worst = r
		}
	}
	fmt.Printf("  %d elections, n=%d: mean %.2f adopt-commit rounds, worst %d —\n",
		trials, n, float64(total)/trials, worst)
	fmt.Println("  agreement/validity deterministic, termination probabilistic: Theorem 2's")
	fmt.Println("  impossibility is strictly about deterministic protocols.")
	fmt.Println()
}

func e29Metrics(n, per int) {
	fmt.Println("E29: wait-free observability (internal/wfstats)")
	fmt.Println("  One registry instrumenting every layer of the Figure 4-5 stack; the")
	fmt.Println("  record path is itself wait-free (atomics only, wfvet-verified).")
	reg := wfstats.NewRegistry()
	consensus.Instrument(reg)
	fac := core.NewConsFAC(n, func() consensus.Object { return consensus.NewCAS(n) })
	fac.Instrument(reg)
	u := core.NewUniversal(seqspec.Counter{}, fac, n, core.WithMetrics(reg))
	runWorkers(n, per, u.Invoke, inc)
	consensus.Instrument(nil) // detach the package-level counters again
	var buf strings.Builder
	if err := reg.WriteText(&buf); err != nil {
		fmt.Println("  metrics export failed:", err)
		return
	}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		fmt.Println("  " + line)
	}
}
