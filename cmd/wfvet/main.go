// Command wfvet audits the repo's wait-freedom claims: it loads the
// packages named by its arguments (./... by default), runs the
// internal/wfcheck analyzers — blocking-construct reachability from
// //wf:waitfree entry points, atomic/plain mixed field access, and seqspec
// transition-function purity — and exits non-zero when any claim is
// violated.
//
// Usage:
//
//	go run ./cmd/wfvet ./...          # audit the annotated claims
//	go run ./cmd/wfvet -all ./...     # audit mode: treat every function as claiming wait-freedom
//	go run ./cmd/wfvet -v ./internal/core
//
// Exit status: 0 clean, 1 violations found, 2 load failure.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"waitfree/internal/wfcheck"
)

func main() {
	all := flag.Bool("all", false, "audit mode: treat every unannotated function as wf:waitfree")
	verbose := flag.Bool("v", false, "report per-package entry-point and type-error counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfvet [-all] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := wfcheck.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := wfcheck.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	dirs, err := expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	conf := wfcheck.Config{All: *all}
	var total int
	packages := 0
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err == wfcheck.ErrNoGoFiles {
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", dir, err))
		}
		packages++
		if len(p.TypeErrors) > 0 {
			fmt.Fprintf(os.Stderr, "wfvet: %s: %d type errors; analysis may be incomplete\n", p.Path, len(p.TypeErrors))
			if *verbose {
				for _, e := range p.TypeErrors {
					fmt.Fprintf(os.Stderr, "wfvet: \t%v\n", e)
				}
			}
		}
		diags := conf.Run(p)
		for _, d := range diags {
			fmt.Println(rel(cwd, d))
		}
		total += len(diags)
		if *verbose {
			fmt.Fprintf(os.Stderr, "wfvet: %s: %d findings\n", p.Path, len(diags))
		}
	}
	if total > 0 {
		fmt.Fprintf(os.Stderr, "wfvet: %d violations in %d packages\n", total, packages)
		os.Exit(1)
	}
	if *verbose {
		fmt.Fprintf(os.Stderr, "wfvet: %d packages clean\n", packages)
	}
}

// rel renders a diagnostic with its filename relative to the working
// directory, matching go vet's output shape.
func rel(cwd string, d wfcheck.Diagnostic) string {
	if r, err := filepath.Rel(cwd, d.Pos.Filename); err == nil && !strings.HasPrefix(r, "..") {
		d.Pos.Filename = r
	}
	return d.String()
}

// expand resolves package patterns (dir, dir/..., ./...) to directories
// containing Go files, skipping testdata, vendor and hidden trees.
func expand(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." {
				pat = cwd
			}
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
	os.Exit(2)
}
