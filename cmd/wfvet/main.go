// Command wfvet audits the repo's wait-freedom claims: it loads the
// packages named by its arguments (./... by default), builds the
// whole-program call graph over the module, runs the internal/wfcheck
// analyzers — blocking-construct reachability from //wf:waitfree entry
// points, bound certification of //wf:bounded claims, the lock-free retry
// lint, publication release/acquire pairing, atomic/plain mixed field
// access, seqspec transition-function purity, the single-writer /
// monotone / ABA register disciplines, the service-tier crash-durability
// disciplines (fsyncorder commit ordering on //wf:durable functions,
// ackpersist persist-before-acknowledge, goown goroutine shutdown
// ownership), and symbolic step-bound certification of every exported
// façade operation — and exits non-zero when any claim is violated. Stale-directive warnings (under -all) are
// advisory unless -strict-stale promotes unallowlisted ones to errors.
//
// Usage:
//
//	go run ./cmd/wfvet ./...          # audit the annotated claims
//	go run ./cmd/wfvet -all ./...     # audit mode: treat every function as claiming wait-freedom
//	go run ./cmd/wfvet -bounds ./...  # bounds report + per-operation symbolic step certificates
//	go run ./cmd/wfvet -bounds -md BOUNDS.md ./...  # also write the certificates as Markdown
//	go run ./cmd/wfvet -json ./...    # findings as a JSON array
//	go run ./cmd/wfvet -sarif ./...   # findings as SARIF 2.1.0, for code-scanning upload
//	go run ./cmd/wfvet -all -strict-stale ./...     # CI: stale directives fail the run
//	go run ./cmd/wfvet -intrapackage ./...  # PR 2 behavior: stop call resolution at package boundaries
//
// Exit status: 0 clean (warnings allowed), 1 violations found, 2 load failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"waitfree/internal/wfcheck"
)

func main() {
	all := flag.Bool("all", false, "audit mode: treat every unannotated function as wf:waitfree (enables stale-directive warnings)")
	bounds := flag.Bool("bounds", false, "print the bounds report: one line per wf:bounded/wf:lockfree directive with its certification status")
	jsonOut := flag.Bool("json", false, "emit findings (and the bounds report) as JSON on stdout")
	sarifOut := flag.Bool("sarif", false, "emit findings as SARIF 2.1.0 on stdout")
	intra := flag.Bool("intrapackage", false, "resolve calls within each package only (the pre-whole-program behavior)")
	mdOut := flag.String("md", "", "write the symbolic step certificates as Markdown to this file (for committing as BOUNDS.md)")
	strictStale := flag.Bool("strict-stale", false, "promote stale-directive warnings to errors unless allowlisted (implies -all)")
	staleAllow := flag.String("stale-allow", "", "comma-separated allowlist of stale findings (file.go:FuncName) exempt from -strict-stale")
	verbose := flag.Bool("v", false, "report per-package finding and type-error counts")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: wfvet [-all] [-bounds] [-md file] [-strict-stale] [-stale-allow keys] [-json|-sarif] [-intrapackage] [-v] [packages]\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *jsonOut && *sarifOut {
		fatal(fmt.Errorf("-json and -sarif are mutually exclusive"))
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	root, err := wfcheck.FindModuleRoot(cwd)
	if err != nil {
		fatal(err)
	}
	loader, err := wfcheck.NewLoader(root)
	if err != nil {
		fatal(err)
	}

	dirs, err := expand(cwd, patterns)
	if err != nil {
		fatal(err)
	}

	var targets []*wfcheck.Package
	for _, dir := range dirs {
		p, err := loader.LoadDir(dir)
		if err == wfcheck.ErrNoGoFiles {
			continue
		}
		if err != nil {
			fatal(fmt.Errorf("loading %s: %w", dir, err))
		}
		targets = append(targets, p)
		if len(p.TypeErrors) > 0 {
			fmt.Fprintf(os.Stderr, "wfvet: %s: %d type errors; analysis may be incomplete\n", p.Path, len(p.TypeErrors))
			if *verbose {
				for _, e := range p.TypeErrors {
					fmt.Fprintf(os.Stderr, "wfvet: \t%v\n", e)
				}
			}
		}
	}

	conf := wfcheck.Config{All: *all || *strictStale, IntraPackage: *intra, StrictStale: *strictStale}
	if *staleAllow != "" {
		conf.StaleAllow = make(map[string]bool)
		for _, k := range strings.Split(*staleAllow, ",") {
			if k = strings.TrimSpace(k); k != "" {
				conf.StaleAllow[k] = true
			}
		}
	}
	res := conf.RunProgram(wfcheck.NewProgram(loader), targets)

	switch {
	case *jsonOut:
		writeJSON(cwd, res, *bounds)
	case *sarifOut:
		writeSARIF(cwd, res)
	default:
		for _, d := range res.Diags {
			fmt.Println(rel(cwd, d))
		}
		if *bounds {
			printBounds(cwd, res.Bounds)
			printOps(res.Ops)
		}
	}
	if *mdOut != "" {
		if err := os.WriteFile(*mdOut, boundsMarkdown(res.Ops), 0o644); err != nil {
			fatal(err)
		}
	}

	errs, warns := 0, 0
	for _, d := range res.Diags {
		if d.Warn {
			warns++
		} else {
			errs++
		}
	}
	if *verbose {
		perPkg := make(map[string]int)
		for _, d := range res.Diags {
			perPkg[filepath.Dir(d.Pos.Filename)]++
		}
		for _, p := range targets {
			fmt.Fprintf(os.Stderr, "wfvet: %s: %d findings\n", p.Path, perPkg[p.Dir])
		}
	}
	if errs > 0 {
		fmt.Fprintf(os.Stderr, "wfvet: %d violations, %d warnings in %d packages\n", errs, warns, len(targets))
		os.Exit(1)
	}
	if *verbose || warns > 0 {
		fmt.Fprintf(os.Stderr, "wfvet: %d packages clean (%d warnings)\n", len(targets), warns)
	}
}

// printBounds renders the bounds report as aligned text: one line per
// directive with its certification status and the engine's reasoning.
func printBounds(cwd string, records []wfcheck.BoundRecord) {
	if len(records) == 0 {
		return
	}
	counts := make(map[wfcheck.BoundStatus]int)
	fmt.Println("wf:bounded certification report:")
	for _, r := range records {
		counts[r.Status]++
		pos := r.Pos
		if rp, err := filepath.Rel(cwd, pos.Filename); err == nil && !strings.HasPrefix(rp, "..") {
			pos.Filename = rp
		}
		fmt.Printf("  %-12s %s:%d: %s: %s — %s\n", r.Status, pos.Filename, pos.Line, r.Scope, r.Arg, r.Detail)
	}
	fmt.Printf("  total: %d verified, %d trusted, %d lockfree, %d contradicted\n",
		counts[wfcheck.BoundVerified], counts[wfcheck.BoundTrusted],
		counts[wfcheck.BoundLockFree], counts[wfcheck.BoundContradicted])
}

// printOps renders the symbolic step certificates: one line per exported
// façade operation with its worst-case bound and certification status.
func printOps(ops []wfcheck.OpCert) {
	if len(ops) == 0 {
		return
	}
	fmt.Println("symbolic step certificates:")
	for _, c := range ops {
		fmt.Printf("  %-10s %-14s %s — %s\n", c.Status, c.Bound, c.Op, c.Basis)
	}
}

// paramGloss documents the symbolic parameters the tree declares via
// //wf:param and //wf:len; certificates over parameters outside this table
// still render, glossed by their declaration.
var paramGloss = map[string]string{
	"n": "number of processes (MaxProcs)",
	"k": "snapshot interval: operations between decided-log snapshots",
	"S": "shard count of a sharded object",
	"B": "help-spin budget before a process helps itself",
	"g": "GC interval: operations between log-GC anchor swings",
	"M": "registered metrics in a wfstats registry",
	"C": "live-sample cap of the space accountant",
}

// boundsMarkdown renders the certificates as the committed BOUNDS.md: a
// deterministic document CI regenerates and diffs, so any change to a
// certified bound must land as a reviewed diff.
func boundsMarkdown(ops []wfcheck.OpCert) []byte {
	var b strings.Builder
	b.WriteString("# Worst-case step certificates\n\n")
	b.WriteString("Generated by `go run ./cmd/wfvet -bounds -md BOUNDS.md ./...` — do not\n")
	b.WriteString("edit by hand. CI regenerates this file and fails on drift, so every\n")
	b.WriteString("change to a certified bound lands as a reviewed diff.\n\n")
	b.WriteString("Each row is an exported operation reachable from the module façade and\n")
	b.WriteString("its symbolic worst-case step bound: the wait-freedom guarantee, stated\n")
	b.WriteString("as a polynomial over the protocol parameters. `verified` bounds are\n")
	b.WriteString("machine-derived end to end; `trusted` bounds rest on at least one\n")
	b.WriteString("declared fact (a `//wf:steps` contract or a `[expr]` loop bracket).\n\n")

	params := make(map[string]bool)
	for _, c := range ops {
		for _, p := range c.Poly.Params() {
			params[p] = true
		}
	}
	if len(params) > 0 {
		names := make([]string, 0, len(params))
		for p := range params {
			names = append(names, p)
		}
		sort.Strings(names)
		b.WriteString("| parameter | meaning |\n|---|---|\n")
		for _, p := range names {
			gloss := paramGloss[p]
			if gloss == "" {
				gloss = "declared via //wf:param"
			}
			fmt.Fprintf(&b, "| `%s` | %s |\n", p, gloss)
		}
		b.WriteString("\n")
	}

	b.WriteString("| operation | bound | status |\n|---|---|---|\n")
	for _, c := range ops {
		fmt.Fprintf(&b, "| `%s` | `%s` | %s |\n", c.Op, c.Bound, c.Status)
	}
	b.WriteString("\n## Certification basis\n\n")
	for _, c := range ops {
		fmt.Fprintf(&b, "- `%s` — %s\n", c.Op, c.Basis)
	}
	return []byte(b.String())
}

// jsonFinding is one diagnostic in -json output.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Column   int    `json:"column"`
	Analyzer string `json:"analyzer"`
	Severity string `json:"severity"` // "error" or "warning"
	Message  string `json:"message"`
}

// jsonBound is one bounds-report row in -json output.
type jsonBound struct {
	File   string `json:"file"`
	Line   int    `json:"line"`
	Pkg    string `json:"pkg"`
	Scope  string `json:"scope"`
	Status string `json:"status"`
	Arg    string `json:"arg"`
	Detail string `json:"detail"`
}

// jsonOp is one symbolic step certificate in -json output.
type jsonOp struct {
	Op     string `json:"op"`
	Bound  string `json:"bound"`
	Status string `json:"status"`
	Basis  string `json:"basis"`
}

// writeJSON emits the findings (and, when requested, the bounds report and
// step certificates) as one JSON object, filenames relative to the working
// directory.
func writeJSON(cwd string, res *wfcheck.Result, withBounds bool) {
	out := struct {
		Findings []jsonFinding `json:"findings"`
		Bounds   []jsonBound   `json:"bounds,omitempty"`
		Ops      []jsonOp      `json:"ops,omitempty"`
	}{Findings: []jsonFinding{}}
	for _, d := range res.Diags {
		sev := "error"
		if d.Warn {
			sev = "warning"
		}
		out.Findings = append(out.Findings, jsonFinding{
			File: relPath(cwd, d.Pos.Filename), Line: d.Pos.Line, Column: d.Pos.Column,
			Analyzer: d.Analyzer, Severity: sev, Message: d.Message,
		})
	}
	if withBounds {
		for _, r := range res.Bounds {
			out.Bounds = append(out.Bounds, jsonBound{
				File: relPath(cwd, r.Pos.Filename), Line: r.Pos.Line,
				Pkg: r.Pkg, Scope: r.Scope, Status: string(r.Status), Arg: r.Arg, Detail: r.Detail,
			})
		}
		for _, c := range res.Ops {
			out.Ops = append(out.Ops, jsonOp{Op: c.Op, Bound: c.Bound, Status: string(c.Status), Basis: c.Basis})
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fatal(err)
	}
}

// writeSARIF emits findings as a minimal SARIF 2.1.0 log — one run, one
// rule per analyzer — in the shape GitHub code scanning ingests.
func writeSARIF(cwd string, res *wfcheck.Result) {
	type sarifMessage struct {
		Text string `json:"text"`
	}
	type sarifRule struct {
		ID               string       `json:"id"`
		ShortDescription sarifMessage `json:"shortDescription"`
	}
	type sarifRegion struct {
		StartLine   int `json:"startLine"`
		StartColumn int `json:"startColumn,omitempty"`
	}
	type sarifLocation struct {
		PhysicalLocation struct {
			ArtifactLocation struct {
				URI string `json:"uri"`
			} `json:"artifactLocation"`
			Region sarifRegion `json:"region"`
		} `json:"physicalLocation"`
	}
	type sarifResult struct {
		RuleID    string          `json:"ruleId"`
		Level     string          `json:"level"`
		Message   sarifMessage    `json:"message"`
		Locations []sarifLocation `json:"locations"`
	}

	ruleDescs := map[string]string{
		"annot":        "malformed or conflicting //wf: directive",
		"blocking":     "blocking construct reachable from a wait-free entry point",
		"boundcert":    "wf:bounded claim audit",
		"progress":     "lock-free retry loop in wait-free code",
		"pubsafety":    "publication read without the acquiring atomic load",
		"atomicmix":    "field accessed both atomically and plainly",
		"specpure":     "nondeterminism in a seqspec transition function",
		"symbound":     "exported operation without a finite symbolic step certificate",
		"singlewriter": "foreign write to a single-writer per-process slot",
		"monotone":     "write to a monotone register not provably non-decreasing",
		"abasafe":      "pointer compare-and-swap without ABA protection",
		"fsyncorder":   "commit rename without the fsync ordering of a durable function",
		"ackpersist":   "client-visible acknowledgement not dominated by a persist",
		"goown":        "goroutine without a declared reachable shutdown edge",
		"stale":        "directive no analyzer needs any more",
	}
	seen := make(map[string]bool)
	var rules []sarifRule
	var results []sarifResult
	for _, d := range res.Diags {
		if !seen[d.Analyzer] {
			seen[d.Analyzer] = true
			desc := ruleDescs[d.Analyzer]
			if desc == "" {
				desc = d.Analyzer
			}
			rules = append(rules, sarifRule{ID: "wfvet/" + d.Analyzer, ShortDescription: sarifMessage{Text: desc}})
		}
		level := "error"
		if d.Warn {
			level = "warning"
		}
		r := sarifResult{
			RuleID: "wfvet/" + d.Analyzer, Level: level,
			Message: sarifMessage{Text: fmt.Sprintf("[%s] %s", d.Analyzer, d.Message)},
		}
		var loc sarifLocation
		loc.PhysicalLocation.ArtifactLocation.URI = filepath.ToSlash(relPath(cwd, d.Pos.Filename))
		loc.PhysicalLocation.Region = sarifRegion{StartLine: d.Pos.Line, StartColumn: d.Pos.Column}
		r.Locations = append(r.Locations, loc)
		results = append(results, r)
	}
	sort.Slice(rules, func(i, j int) bool { return rules[i].ID < rules[j].ID })
	if rules == nil {
		rules = []sarifRule{}
	}
	if results == nil {
		results = []sarifResult{}
	}

	log := map[string]any{
		"$schema": "https://json.schemastore.org/sarif-2.1.0.json",
		"version": "2.1.0",
		"runs": []any{map[string]any{
			"tool": map[string]any{"driver": map[string]any{
				"name":  "wfvet",
				"rules": rules,
			}},
			"results": results,
		}},
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(log); err != nil {
		fatal(err)
	}
}

// relPath relativizes a filename against the working directory when it
// stays inside it.
func relPath(cwd, name string) string {
	if r, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(r, "..") {
		return r
	}
	return name
}

// rel renders a diagnostic with its filename relative to the working
// directory, matching go vet's output shape.
func rel(cwd string, d wfcheck.Diagnostic) string {
	d.Pos.Filename = relPath(cwd, d.Pos.Filename)
	return d.String()
}

// expand resolves package patterns (dir, dir/..., ./...) to directories
// containing Go files, skipping testdata, vendor and hidden trees.
func expand(cwd string, patterns []string) ([]string, error) {
	seen := make(map[string]bool)
	var dirs []string
	add := func(dir string) {
		if !seen[dir] {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if strings.HasSuffix(pat, "...") {
			recursive = true
			pat = strings.TrimSuffix(pat, "...")
			pat = strings.TrimSuffix(pat, "/")
			if pat == "" || pat == "." {
				pat = cwd
			}
		}
		base, err := filepath.Abs(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(base)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "wfvet: %v\n", err)
	os.Exit(2)
}
