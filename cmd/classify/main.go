// Command classify estimates the consensus number of a shared-object type
// by bounded protocol synthesis (internal/hierarchy.Classify): it searches
// for 2- and 3-process wait-free consensus protocols over the object's
// operation menu, re-verifying anything it finds with the exhaustive
// checker. Lower bounds are certain; "=" verdicts hold within the searched
// bounds only.
//
// Usage:
//
//	classify -object registers -depth 2
//	classify -object cas -depth 1
//	classify -object queue -depth 2
//	classify -list
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree/internal/hierarchy"
	"waitfree/internal/model"
)

func objects() map[string]func() model.Object {
	cas := model.RMWFn{
		Name: "compare-and-swap",
		Apply: func(cur, a, b model.Value) model.Value {
			if cur == a {
				return b
			}
			return cur
		},
		Operands: [][2]model.Value{{model.None, 0}, {model.None, 1}},
	}
	return map[string]func() model.Object{
		"registers": func() model.Object { return model.NewMemory("rw", make([]model.Value, 2)) },
		"register1": func() model.Object { return model.NewMemory("rw1", make([]model.Value, 1)) },
		"cas": func() model.Object {
			return model.NewMemory("cas", []model.Value{model.None}, model.WithRMW(cas), model.WithoutRW())
		},
		"tas": func() model.Object {
			return model.NewMemory("tas", []model.Value{0}, model.WithRMW(model.TestAndSet), model.WithoutRW())
		},
		"queue":    func() model.Object { return model.NewQueue("queue", nil) },
		"augqueue": func() model.Object { return model.NewAugmentedQueue("augqueue", nil) },
		"channels": func() model.Object { return model.NewChannels("p2p", 2) },
	}
}

func main() {
	var (
		object = flag.String("object", "", "object to classify (see -list)")
		depth  = flag.Int("depth", 2, "per-process operation bound")
		budget = flag.Int64("budget", 0, "search node budget (0 = default)")
		list   = flag.Bool("list", false, "list known objects")
	)
	flag.Parse()

	objs := objects()
	if *list || *object == "" {
		fmt.Println("objects:")
		for name := range objs {
			fmt.Printf("  %s\n", name)
		}
		fmt.Println("\nLower bounds are certain (found protocols are re-verified);")
		fmt.Println("\"=\" verdicts hold within the searched depth and value domain only.")
		return
	}
	mk, ok := objs[*object]
	if !ok {
		fmt.Fprintf(os.Stderr, "classify: unknown object %q (try -list)\n", *object)
		os.Exit(1)
	}
	c := hierarchy.Classify(mk(), *depth, *budget)
	fmt.Printf("%s: %s\n", *object, c)
}
