// Command wfdemo demonstrates the paper's motivating claim (Section 1):
// critical-section objects let one stalled process block everyone, while
// the wait-free universal construction lets every healthy process finish
// its operations regardless.
//
// It runs the same counter workload twice — once over a lock, once over the
// universal construction — while process 0 repeatedly stalls mid-operation,
// and reports how far the healthy processes got.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"text/tabwriter"
	"time"

	"waitfree"
	"waitfree/internal/baseline"
	"waitfree/internal/seqspec"
)

func main() {
	var (
		workers  = flag.Int("workers", 4, "worker processes")
		duration = flag.Duration("duration", 2*time.Second, "measurement window")
		stall    = flag.Duration("stall", 50*time.Millisecond, "stall injected into process 0")
		every    = flag.Int("every", 20, "stall every k-th operation of process 0")
		shards   = flag.Int("shards", 4, "shard count for the sharded-KV section")
	)
	flag.Parse()

	fmt.Printf("Workload: %d workers incrementing a shared counter for %v;\n", *workers, *duration)
	fmt.Printf("process 0 stalls %v every %d operations, in the middle of an operation.\n\n", *stall, *every)

	reg := waitfree.NewMetrics()
	lockStats := runLocked(*workers, *duration, *stall, *every, reg)
	wfStats := runWaitFree(*workers, *duration, *stall, *every, reg)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "WORKER\tLOCK ops\tLOCK max-latency\tWAIT-FREE ops\tWAIT-FREE max-latency")
	var lockWorst, wfWorst time.Duration
	for p := 0; p < *workers; p++ {
		label := fmt.Sprintf("P%d", p)
		if p == 0 {
			label += " (stalling)"
		} else {
			if lockStats[p].maxLatency > lockWorst {
				lockWorst = lockStats[p].maxLatency
			}
			if wfStats[p].maxLatency > wfWorst {
				wfWorst = wfStats[p].maxLatency
			}
		}
		fmt.Fprintf(tw, "%s\t%d\t%v\t%d\t%v\n", label,
			lockStats[p].ops, lockStats[p].maxLatency,
			wfStats[p].ops, wfStats[p].maxLatency)
	}
	if err := tw.Flush(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Printf("\nWorst healthy-worker operation latency: lock-based %v, wait-free %v\n",
		lockWorst, wfWorst)
	fmt.Println("\nA lock-based healthy worker that requests the lock while P0 sleeps inside")
	fmt.Println("the critical section waits out the entire stall; wait-free workers never do.")

	fmt.Println("\nMetrics, side by side (one wfstats registry instrumenting both objects):")
	fmt.Println("baseline.* is the lock — convoy is the queue each stall builds and hold_ns")
	fmt.Println("absorbs the sleeps; universal.* is the wait-free object, whose replay_len")
	fmt.Println("stays bounded by the worker count no matter how long P0 stalls.")
	fmt.Println()
	if err := reg.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	runSharded(*workers, *shards, *duration)
}

// runSharded demonstrates the sharded front end: the same read-mostly KV
// workload against one universal object versus S of them with keys hashed
// across shards. Reads ride the Observe fast path (no cons); writes on
// different shards no longer serialize through one log.
func runSharded(workers, shards int, duration time.Duration) {
	fmt.Printf("\nSharded KV front end: %d workers, 95%% get / 5%% put over 1024 keys, %v each.\n",
		workers, duration)
	for _, s := range []int{1, shards} {
		kv := waitfree.NewShardedKV(s, workers, waitfree.NewSwapFetchAndCons)
		for k := int64(0); k < 1024; k++ {
			kv.Invoke(0, waitfree.Op{Kind: "put", Args: []int64{k, k}})
		}
		rngs := make([]lcg, workers) // one private generator per worker
		for p := range rngs {
			rngs[p].state = uint64(p + 1)
		}
		stats := drive(workers, duration, func(pid int, _ seqspec.Op) int64 {
			r := rngs[pid].next()
			key := int64(r % 1024)
			if r%100 < 95 {
				return kv.Invoke(pid, waitfree.Op{Kind: "get", Args: []int64{key}})
			}
			return kv.Invoke(pid, waitfree.Op{Kind: "put", Args: []int64{key, int64(r)}})
		})
		var total int64
		for _, st := range stats {
			total += st.ops
		}
		fmt.Printf("  shards=%d: %8d ops (%.2fM ops/s), fast reads %d\n",
			s, total, float64(total)/duration.Seconds()/1e6, kv.FastReads())
	}
	fmt.Println("\nEach shard is still the paper's wait-free construction; sharding only")
	fmt.Println("removes the single shared log from the workload's critical path.")
}

type lcg struct{ state uint64 }

func (g *lcg) next() uint64 {
	g.state = g.state*6364136223846793005 + 1442695040888963407
	return g.state >> 33
}

type workerStats struct {
	ops        int64
	maxLatency time.Duration
}

func runLocked(workers int, duration, stall time.Duration, every int, reg *waitfree.Metrics) []workerStats {
	obj := baseline.NewLocked(seqspec.Counter{})
	obj.Instrument(reg)
	var count0 int
	obj.CriticalSection = func(pid int) {
		if pid == 0 {
			count0++
			if count0%every == 0 {
				time.Sleep(stall)
			}
		}
	}
	return drive(workers, duration, func(pid int, op seqspec.Op) int64 {
		return obj.Invoke(pid, op)
	})
}

func runWaitFree(workers int, duration, stall time.Duration, every int, reg *waitfree.Metrics) []workerStats {
	inner := waitfree.NewSwapFetchAndCons()
	fac := &delayFAC{inner: inner, victim: 0, stall: stall, every: int64(every)}
	u := waitfree.New(seqspec.Counter{}, fac, workers, waitfree.WithMetrics(reg))
	return drive(workers, duration, u.Invoke)
}

// delayFAC injects the stall after the cons step of the victim's operation
// — the worst moment for the construction: the entry is announced in the
// shared list but its snapshot has not been stored yet.
type delayFAC struct {
	inner  waitfree.FetchAndCons
	victim int
	stall  time.Duration
	every  int64
	count  atomic.Int64
}

func (d *delayFAC) FetchAndCons(pid int, e *waitfree.Entry) *waitfree.Node {
	out := d.inner.FetchAndCons(pid, e)
	if pid == d.victim && d.count.Add(1)%d.every == 0 {
		time.Sleep(d.stall)
	}
	return out
}

func (d *delayFAC) Observe() *waitfree.Node { return d.inner.Observe() }

func drive(workers int, duration time.Duration, invoke func(int, seqspec.Op) int64) []workerStats {
	stats := make([]workerStats, workers)
	var stop atomic.Bool
	var wg sync.WaitGroup
	for p := 0; p < workers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for !stop.Load() {
				start := time.Now()
				invoke(p, seqspec.Op{Kind: "inc"})
				if d := time.Since(start); d > stats[p].maxLatency {
					stats[p].maxLatency = d
				}
				stats[p].ops++
				runtime.Gosched() // rotate fairly on few cores
			}
		}()
	}
	time.Sleep(duration)
	stop.Store(true)
	wg.Wait()
	return stats
}
