// Command wfbench drives a wfserver over real sockets.
//
// Three modes:
//
//	-mode fill   write keys 0..keys-1 with a deterministic value, then exit
//	-mode check  read keys 0..keys-1 and fail if any value is wrong — the
//	             verification half of a kill -9 / restart drill
//	-mode bench  open-loop load: -conns connections, each paced so the
//	             fleet offers -rate ops/s in aggregate (0 = closed loop),
//	             for -duration; reports ops/s and latency percentiles
//
// The bench mode measures latency from each operation's *scheduled* send
// time, not the actual send time, so a stalled server inflates the
// percentiles instead of silently thinning the load (the coordinated-
// omission correction).
//
//wf:blocking load generator: sockets and timers; makes no wait-freedom claims
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"sync"
	"time"

	"waitfree/internal/seqspec"
	"waitfree/internal/server"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7450", "server address")
	mode := flag.String("mode", "bench", "fill | check | bench")
	conns := flag.Int("conns", 64, "concurrent connections")
	keys := flag.Int64("keys", 4096, "key-space size")
	readFrac := flag.Float64("read-frac", 0.9, "fraction of reads in bench mode")
	rate := flag.Float64("rate", 0, "aggregate target ops/s (0 = closed loop)")
	dur := flag.Duration("duration", 5*time.Second, "bench duration")
	jsonOut := flag.Bool("json", false, "emit one JSON result line")
	flag.Parse()

	var err error
	switch *mode {
	case "fill":
		err = fill(*addr, *conns, *keys)
	case "check":
		err = check(*addr, *conns, *keys)
	case "bench":
		err = bench(*addr, *conns, *keys, *readFrac, *rate, *dur, *jsonOut)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		os.Exit(1)
	}
}

// fillValue is the deterministic value check expects under key k.
func fillValue(k int64) int64 { return k*3 + 1 }

// forEachKey partitions the key space across conns workers and runs fn on
// each worker's slice of keys over its own connection.
func forEachKey(addr string, conns int, keys int64, fn func(cl *server.Client, k int64) error) error {
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for k := int64(w); k < keys; k += int64(conns) {
				if err := fn(cl, k); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	return <-errs // nil when the channel is empty
}

func fill(addr string, conns int, keys int64) error {
	start := time.Now()
	err := forEachKey(addr, conns, keys, func(cl *server.Client, k int64) error {
		_, err := cl.Put(k, fillValue(k))
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("filled %d keys over %d conns in %v\n", keys, conns, time.Since(start).Round(time.Millisecond))
	return nil
}

func check(addr string, conns int, keys int64) error {
	err := forEachKey(addr, conns, keys, func(cl *server.Client, k int64) error {
		v, err := cl.Get(k)
		if err != nil {
			return err
		}
		if v != fillValue(k) {
			return fmt.Errorf("key %d = %d, want %d (acked write lost)", k, v, fillValue(k))
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("checked %d keys: all present\n", keys)
	return nil
}

func bench(addr string, conns int, keys int64, readFrac, rate float64, dur time.Duration, jsonOut bool) error {
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(conns) / rate * float64(time.Second))
	}
	type result struct {
		lats []time.Duration
		ops  int64
		errs int64
	}
	results := make([]result, conns)
	var wg sync.WaitGroup
	stop := time.Now().Add(dur)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				results[w].errs++
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			res := &results[w]
			res.lats = make([]time.Duration, 0, 1<<14)
			next := time.Now()
			for time.Now().Before(stop) {
				if interval > 0 {
					if d := time.Until(next); d > 0 {
						time.Sleep(d)
					}
				} else {
					next = time.Now()
				}
				var op seqspec.Op
				k := rng.Int63n(keys)
				if rng.Float64() < readFrac {
					op = seqspec.Op{Kind: "get", Args: []int64{k}}
				} else {
					op = seqspec.Op{Kind: "put", Args: []int64{k, rng.Int63()}}
				}
				_, err := cl.Do(op)
				if err != nil {
					res.errs++
					return
				}
				// Latency from the scheduled instant, not the send.
				res.lats = append(res.lats, time.Since(next))
				res.ops++
				next = next.Add(interval)
			}
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	var all []time.Duration
	var ops, errCount int64
	for i := range results {
		all = append(all, results[i].lats...)
		ops += results[i].ops
		errCount += results[i].errs
	}
	if len(all) == 0 {
		return fmt.Errorf("no operations completed (%d errors)", errCount)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
	pct := func(p float64) time.Duration { return all[int(float64(len(all)-1)*p)] }
	opsPerSec := float64(ops) / elapsed.Seconds()
	if jsonOut {
		fmt.Printf(`{"conns":%d,"ops":%d,"errors":%d,"ops_per_sec":%.0f,"p50_us":%.1f,"p99_us":%.1f,"p999_us":%.1f}`+"\n",
			conns, ops, errCount, opsPerSec,
			float64(pct(0.50).Microseconds()), float64(pct(0.99).Microseconds()), float64(pct(0.999).Microseconds()))
	} else {
		fmt.Printf("conns=%d ops=%d errors=%d ops/s=%.0f p50=%v p99=%v p999=%v\n",
			conns, ops, errCount, opsPerSec, pct(0.50), pct(0.99), pct(0.999))
	}
	if errCount > 0 {
		return fmt.Errorf("%d operations failed", errCount)
	}
	return nil
}
