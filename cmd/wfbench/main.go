// Command wfbench drives a wfserver over real sockets.
//
// Three modes:
//
//	-mode fill   write keys 0..keys-1 with a deterministic value, then exit
//	-mode check  read keys 0..keys-1 and fail if any value is wrong — the
//	             verification half of a kill -9 / restart drill
//	-mode bench  open-loop load: -conns connections, each paced so the
//	             fleet offers -rate ops/s in aggregate (0 = closed loop),
//	             for -duration; reports ops/s and latency percentiles.
//	             -pipeline <depth> keeps up to depth requests in flight
//	             per connection (sender and receiver goroutines sharing
//	             one socket), reassembling completions by request id
//
// The bench mode measures latency from each operation's *enqueue* time —
// the scheduled instant under -rate pacing, the moment the operation was
// generated in closed loop — never from the actual socket send. A stalled
// server (or a full pipeline window) therefore inflates the percentiles
// instead of silently thinning the load (the coordinated-omission
// correction); latencies land in a wfstats.Histogram and the reported
// p50/p95/p99/p999 come from its Quantile estimator.
//
//wf:blocking load generator: sockets and timers; makes no wait-freedom claims
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"waitfree/internal/seqspec"
	"waitfree/internal/server"
	"waitfree/internal/wfstats"
	"waitfree/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7450", "server address")
	mode := flag.String("mode", "bench", "fill | check | bench")
	conns := flag.Int("conns", 64, "concurrent connections")
	keys := flag.Int64("keys", 4096, "key-space size")
	readFrac := flag.Float64("read-frac", 0.9, "fraction of reads in bench mode")
	rate := flag.Float64("rate", 0, "aggregate target ops/s (0 = closed loop)")
	pipeline := flag.Int("pipeline", 1, "requests in flight per connection (1 = sequential)")
	dur := flag.Duration("duration", 5*time.Second, "bench duration")
	jsonOut := flag.Bool("json", false, "emit one JSON result line")
	flag.Parse()

	var err error
	switch *mode {
	case "fill":
		err = fill(*addr, *conns, *keys)
	case "check":
		err = check(*addr, *conns, *keys)
	case "bench":
		err = bench(*addr, *conns, *keys, *readFrac, *rate, *pipeline, *dur, *jsonOut)
	default:
		err = fmt.Errorf("unknown mode %q", *mode)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfbench: %v\n", err)
		os.Exit(1)
	}
}

// fillValue is the deterministic value check expects under key k.
func fillValue(k int64) int64 { return k*3 + 1 }

// forEachKey partitions the key space across conns workers and runs fn on
// each worker's slice of keys over its own connection.
func forEachKey(addr string, conns int, keys int64, fn func(cl *server.Client, k int64) error) error {
	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				errs <- err
				return
			}
			defer cl.Close()
			for k := int64(w); k < keys; k += int64(conns) {
				if err := fn(cl, k); err != nil {
					errs <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	return <-errs // nil when the channel is empty
}

func fill(addr string, conns int, keys int64) error {
	start := time.Now()
	err := forEachKey(addr, conns, keys, func(cl *server.Client, k int64) error {
		_, err := cl.Put(k, fillValue(k))
		return err
	})
	if err != nil {
		return err
	}
	fmt.Printf("filled %d keys over %d conns in %v\n", keys, conns, time.Since(start).Round(time.Millisecond))
	return nil
}

func check(addr string, conns int, keys int64) error {
	err := forEachKey(addr, conns, keys, func(cl *server.Client, k int64) error {
		v, err := cl.Get(k)
		if err != nil {
			return err
		}
		if v != fillValue(k) {
			return fmt.Errorf("key %d = %d, want %d (acked write lost)", k, v, fillValue(k))
		}
		return nil
	})
	if err != nil {
		return err
	}
	fmt.Printf("checked %d keys: all present\n", keys)
	return nil
}

func bench(addr string, conns int, keys int64, readFrac, rate float64, pipeline int, dur time.Duration, jsonOut bool) error {
	if pipeline < 1 {
		pipeline = 1
	}
	var interval time.Duration
	if rate > 0 {
		interval = time.Duration(float64(conns) / rate * float64(time.Second))
	}
	var (
		hist     wfstats.Histogram // latency in µs, all workers
		ops      atomic.Int64
		errCount atomic.Int64
	)
	var wg sync.WaitGroup
	stop := time.Now().Add(dur)
	for w := 0; w < conns; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			cl, err := server.Dial(addr)
			if err != nil {
				errCount.Add(1)
				return
			}
			defer cl.Close()
			rng := rand.New(rand.NewSource(int64(w)*2654435761 + 1))
			nextOp := func() seqspec.Op {
				k := rng.Int63n(keys)
				if rng.Float64() < readFrac {
					return seqspec.Op{Kind: "get", Args: []int64{k}}
				}
				return seqspec.Op{Kind: "put", Args: []int64{k, rng.Int63()}}
			}
			if pipeline == 1 {
				next := time.Now()
				for time.Now().Before(stop) {
					if interval > 0 {
						if d := time.Until(next); d > 0 {
							time.Sleep(d)
						}
					} else {
						next = time.Now()
					}
					if _, err := cl.Do(nextOp()); err != nil {
						errCount.Add(1)
						return
					}
					// Latency from the enqueue instant, not the send.
					hist.Observe(time.Since(next).Microseconds())
					ops.Add(1)
					next = next.Add(interval)
				}
				return
			}
			runPipelined(cl, nextOp, stop, interval, pipeline, &hist, &ops, &errCount)
		}(w)
	}
	started := time.Now()
	wg.Wait()
	elapsed := time.Since(started)

	n, errs := ops.Load(), errCount.Load()
	if n == 0 {
		return fmt.Errorf("no operations completed (%d errors)", errs)
	}
	opsPerSec := float64(n) / elapsed.Seconds()
	p50, p95, p99, p999 := hist.Quantile(0.50), hist.Quantile(0.95), hist.Quantile(0.99), hist.Quantile(0.999)
	if jsonOut {
		fmt.Printf(`{"conns":%d,"pipeline":%d,"ops":%d,"errors":%d,"ops_per_sec":%.0f,"p50_us":%d,"p95_us":%d,"p99_us":%d,"p999_us":%d}`+"\n",
			conns, pipeline, n, errs, opsPerSec, p50, p95, p99, p999)
	} else {
		fmt.Printf("conns=%d pipeline=%d ops=%d errors=%d ops/s=%.0f p50=%dµs p95=%dµs p99=%dµs p999=%dµs\n",
			conns, pipeline, n, errs, opsPerSec, p50, p95, p99, p999)
	}
	if errs > 0 {
		return fmt.Errorf("%d operations failed", errs)
	}
	return nil
}

// runPipelined drives one connection with up to depth requests in flight:
// the calling goroutine is the sender, a spawned goroutine receives. The
// two share the Client along its documented one-sender/one-receiver seam
// and a mutex-guarded id→enqueue-time map — a request is entered into the
// map under the same critical section as its Send, so the receiver's
// lookup after a response always finds it. Latency runs from the enqueue
// instant (scheduled arrival under pacing), so time spent waiting for a
// free window slot is charged to the operation.
func runPipelined(cl *server.Client, nextOp func() seqspec.Op, stop time.Time,
	interval time.Duration, depth int, hist *wfstats.Histogram, ops, errCount *atomic.Int64) {
	var (
		mu   sync.Mutex
		enqs = make(map[uint64]time.Time, depth)
		done atomic.Bool
	)
	tokens := make(chan struct{}, depth)
	for i := 0; i < depth; i++ {
		tokens <- struct{}{}
	}
	recvDone := make(chan struct{})
	go func() {
		defer close(recvDone)
		for {
			id, _, err := cl.Recv()
			if err != nil {
				if _, ok := err.(*wire.RemoteError); ok {
					// A refused op still completes its window slot.
					errCount.Add(1)
					mu.Lock()
					delete(enqs, id)
					mu.Unlock()
					tokens <- struct{}{}
					continue
				}
				if !done.Load() {
					errCount.Add(1)
				}
				return
			}
			mu.Lock()
			enq := enqs[id]
			delete(enqs, id)
			mu.Unlock()
			hist.Observe(time.Since(enq).Microseconds())
			ops.Add(1)
			tokens <- struct{}{}
		}
	}()

	next := time.Now()
loop:
	for time.Now().Before(stop) {
		var enq time.Time
		if interval > 0 {
			// Flush queued requests before sleeping on the arrival clock.
			if cl.Flush() != nil {
				break
			}
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			enq = next
			next = next.Add(interval)
		} else {
			enq = time.Now()
		}
		select {
		case <-tokens:
		default:
			// Window full: everything queued must hit the wire before a
			// slot can come back.
			if cl.Flush() != nil {
				break loop
			}
			select {
			case <-tokens:
			case <-recvDone:
				// Receiver gone (server died): in-flight slots will
				// never return, so waiting on one would hang forever.
				break loop
			}
		}
		mu.Lock()
		id, err := cl.Send(nextOp())
		if err == nil {
			enqs[id] = enq
		}
		mu.Unlock()
		if err != nil {
			errCount.Add(1)
			break
		}
	}
	cl.Flush()
	// Drain: every slot back means every response is in; then the close
	// below unblocks the receiver's Recv with a clean error. If the
	// receiver already exited on a transport error, outstanding slots
	// are lost — count them as failed ops instead of deadlocking.
drain:
	for i := 0; i < depth; i++ {
		select {
		case <-tokens:
		case <-recvDone:
			mu.Lock()
			errCount.Add(int64(len(enqs)))
			mu.Unlock()
			break drain
		}
	}
	done.Store(true)
	cl.Close()
	<-recvDone
}
