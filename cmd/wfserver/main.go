// Command wfserver runs the waitfree service tier: a TCP front end over
// the sharded wait-free KV, optionally crash-recoverable through a log
// store directory (-dir). Kill it however you like — kill -9 included —
// and restart it on the same directory: every acknowledged write is
// replayed.
//
// Usage:
//
//	wfserver -addr :7450 -stats :7451 -dir /var/lib/wfserver
//
//wf:blocking command-line entry point: flag parsing, signal handling and the blocking service tier
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"

	"waitfree/internal/server"
)

func main() {
	addr := flag.String("addr", ":7450", "TCP listen address for the KV protocol")
	stats := flag.String("stats", "", "HTTP listen address for /stats, /stats.txt, /healthz (empty disables)")
	shards := flag.Int("shards", 8, "KV shard count")
	procs := flag.Int("procs", 256, "connection pid pool size (max concurrent connections)")
	dir := flag.String("dir", "", "log store directory (empty runs without persistence)")
	snapEvery := flag.Int("snap-every", 4096, "records per shard between snapshots")
	flag.Parse()

	cfg := server.Config{
		Addr:          *addr,
		StatsAddr:     *stats,
		Shards:        *shards,
		Procs:         *procs,
		Dir:           *dir,
		SnapshotEvery: *snapEvery,
		Logf:          log.Printf,
	}
	s, err := server.New(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "wfserver: %v\n", err)
		os.Exit(1)
	}
	s.Start()
	log.Printf("wfserver: listening on %s (shards=%d procs=%d dir=%q)", s.Addr(), *shards, *procs, *dir)
	if sa := s.StatsAddr(); sa != nil {
		log.Printf("wfserver: stats on http://%s/stats", sa)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	log.Printf("wfserver: shutting down")
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "wfserver: close: %v\n", err)
		os.Exit(1)
	}
}
