// Command benchjson runs the performance benchmark suite and records the
// results as JSON, establishing a machine-readable perf trajectory across
// PRs (BENCH_PR1.json, BENCH_PR2.json, ...).
//
// It shells out to `go test -bench` on the root package, parses the
// standard benchmark output — including custom metrics like fast-reads/op
// and replay-mean — and writes one JSON document with environment metadata.
// Each benchmark records the GOMAXPROCS it ran under (the -N name suffix),
// so one file can hold the same benchmark at several -cpu values.
//
// Usage:
//
//	go run ./cmd/benchjson                       # default suite -> BENCH_PR1.json
//	go run ./cmd/benchjson -bench 'ReadMix' -benchtime 500ms -out /tmp/out.json
//	go run ./cmd/benchjson -bench 'Contended' -cpu 1,4,8 -append -out BENCH_PR5.json
//	go run ./cmd/benchjson -diff BENCH_PR3.json BENCH_PR5.json
//
// The -diff mode compares two recorded files instead of running anything:
// benchmarks present in both (matched by name and procs) are compared on
// the gated metrics — ns/op and allocs/op by default, overridable with
// -metrics (e.g. -metrics B/op,allocs/op,heap-bytes for a memory diff) —
// and any ratio above -threshold is reported as a regression with exit
// status 1. A metric absent or zero on the old side is skipped, so gating
// on a metric older files never recorded is safe. Benchmarks that exist on
// only one side are listed but never fail the diff — suites grow across
// PRs by design.
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"time"

	"flag"
)

// result is one benchmark line: name, the GOMAXPROCS it ran under,
// iteration count, and every reported metric (ns/op, B/op, allocs/op, and
// custom b.ReportMetric units).
type result struct {
	Name       string             `json:"name"`
	Procs      int                `json:"procs"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	MaxProcs   int      `json:"gomaxprocs"`
	Command    string   `json:"command"`
	Benchmarks []result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   12345   67.8 ns/op   9 B/op ...`.
// The -8 suffix is the GOMAXPROCS of the run (go test omits it at 1).
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-(\d+))?\s+(\d+)\s+(.+)$`)

func main() {
	var (
		bench     = flag.String("bench", "ReadMix|SnapshotInterval|ShardScaling|Universal/|Wfstats", "benchmark regexp to run")
		benchtime = flag.String("benchtime", "300ms", "per-benchmark measurement time")
		cpu       = flag.String("cpu", "", "comma-separated GOMAXPROCS values passed to go test -cpu")
		count     = flag.Int("count", 1, "go test -count: repetitions per benchmark")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "BENCH_PR1.json", "output JSON path")
		appendTo  = flag.Bool("append", false, "merge results into an existing -out file instead of overwriting")
		diff      = flag.Bool("diff", false, "compare two recorded files: benchjson -diff old.json new.json")
		threshold = flag.Float64("threshold", 1.25, "-diff: flag gated-metric ratios above this as regressions")
		metrics   = flag.String("metrics", "ns/op,allocs/op", "-diff: comma-separated metrics to gate (others stay informational)")
	)
	flag.Parse()

	if *diff {
		if flag.NArg() != 2 {
			fmt.Fprintln(os.Stderr, "benchjson: -diff needs exactly two files: old.json new.json")
			os.Exit(2)
		}
		gated := strings.Split(*metrics, ",")
		for i := range gated {
			gated[i] = strings.TrimSpace(gated[i])
		}
		os.Exit(runDiff(flag.Arg(0), flag.Arg(1), *threshold, gated))
	}

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime}
	if *cpu != "" {
		args = append(args, "-cpu", *cpu)
	}
	if *count > 1 {
		args = append(args, "-count", strconv.Itoa(*count))
	}
	args = append(args, *pkg)
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Command:   "go " + strings.Join(args, " "),
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		procs := 1
		if m[2] != "" {
			procs, _ = strconv.Atoi(m[2])
		}
		iters, _ := strconv.ParseInt(m[3], 10, 64)
		r := result{Name: m[1], Procs: procs, Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[4])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	if *appendTo {
		if prev, err := loadReport(*out); err == nil {
			rep = merge(prev, rep)
		}
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}

func loadReport(path string) (report, error) {
	var rep report
	buf, err := os.ReadFile(path)
	if err != nil {
		return rep, err
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return rep, fmt.Errorf("%s: %w", path, err)
	}
	// Files written before the procs field carry it as 0; those suites all
	// ran at the report's recorded GOMAXPROCS.
	for i := range rep.Benchmarks {
		if rep.Benchmarks[i].Procs == 0 {
			rep.Benchmarks[i].Procs = rep.MaxProcs
		}
	}
	return rep, nil
}

// key identifies a benchmark row across files: the same name at a different
// -cpu is a different measurement, not a replacement.
func key(r result) string { return fmt.Sprintf("%s-%d", r.Name, r.Procs) }

// merge folds the fresh run into a previous report: re-run rows replace
// their old measurement (latest wins, including duplicates within the fresh
// run itself from -count>1 — the final repetition is kept), new rows append,
// and the environment metadata is taken from the fresh run.
func merge(prev, fresh report) report {
	seen := make(map[string]int)
	merged := fresh
	merged.Benchmarks = nil
	for _, r := range append(prev.Benchmarks, fresh.Benchmarks...) {
		if i, ok := seen[key(r)]; ok {
			merged.Benchmarks[i] = r
			continue
		}
		seen[key(r)] = len(merged.Benchmarks)
		merged.Benchmarks = append(merged.Benchmarks, r)
	}
	merged.Command = fresh.Command + " (appended)"
	return merged
}

// runDiff compares two recorded reports on the gated metrics and returns
// the process exit code: 0 when every shared benchmark is within threshold,
// 1 when any regressed. A gated metric the old file lacks (or recorded as
// zero) is skipped for that row: suites gain metrics across PRs the same
// way they gain benchmarks.
func runDiff(oldPath, newPath string, threshold float64, diffMetrics []string) int {
	oldRep, err := loadReport(oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	newRep, err := loadReport(newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		return 2
	}
	oldBy := make(map[string]result, len(oldRep.Benchmarks))
	for _, r := range oldRep.Benchmarks {
		oldBy[key(r)] = r
	}

	var regressions, onlyNew []string
	shared := 0
	for _, n := range newRep.Benchmarks {
		o, ok := oldBy[key(n)]
		if !ok {
			onlyNew = append(onlyNew, key(n))
			continue
		}
		delete(oldBy, key(n))
		shared++
		for _, metric := range diffMetrics {
			ov, nv := o.Metrics[metric], n.Metrics[metric]
			if ov <= 0 {
				continue
			}
			ratio := nv / ov
			status := "ok"
			if ratio > threshold {
				status = "REGRESSION"
				regressions = append(regressions, key(n))
			}
			fmt.Printf("%-60s %-10s %12.4g -> %-12.4g %6.2fx  %s\n",
				key(n), metric, ov, nv, ratio, status)
		}
	}
	var onlyOld []string
	for k := range oldBy {
		onlyOld = append(onlyOld, k)
	}
	sort.Strings(onlyNew)
	sort.Strings(onlyOld)
	for _, k := range onlyNew {
		fmt.Printf("%-60s only in %s\n", k, newPath)
	}
	for _, k := range onlyOld {
		fmt.Printf("%-60s only in %s\n", k, oldPath)
	}

	if len(regressions) > 0 {
		fmt.Fprintf(os.Stderr, "benchjson: %d regression(s) above %.2fx: %s\n",
			len(regressions), threshold, strings.Join(regressions, ", "))
		return 1
	}
	fmt.Printf("benchjson: %d shared benchmarks within %.2fx\n", shared, threshold)
	return 0
}
