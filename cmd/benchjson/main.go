// Command benchjson runs the performance benchmark suite and records the
// results as JSON, establishing a machine-readable perf trajectory across
// PRs (BENCH_PR1.json, BENCH_PR2.json, ...).
//
// It shells out to `go test -bench` on the root package, parses the
// standard benchmark output — including custom metrics like fast-reads/op
// and replay-mean — and writes one JSON document with environment metadata.
//
// Usage:
//
//	go run ./cmd/benchjson                       # default suite -> BENCH_PR1.json
//	go run ./cmd/benchjson -bench 'ReadMix' -benchtime 500ms -out /tmp/out.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"

	"flag"
)

// result is one benchmark line: name, iteration count, and every reported
// metric (ns/op, B/op, allocs/op, and custom b.ReportMetric units).
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

type report struct {
	Generated  string   `json:"generated"`
	GoVersion  string   `json:"go"`
	GOOS       string   `json:"goos"`
	GOARCH     string   `json:"goarch"`
	MaxProcs   int      `json:"gomaxprocs"`
	Command    string   `json:"command"`
	Benchmarks []result `json:"benchmarks"`
}

// benchLine matches `BenchmarkName-8   12345   67.8 ns/op   9 B/op ...`.
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+(.+)$`)

func main() {
	var (
		bench     = flag.String("bench", "ReadMix|SnapshotInterval|ShardScaling|Universal/|Wfstats", "benchmark regexp to run")
		benchtime = flag.String("benchtime", "300ms", "per-benchmark measurement time")
		pkg       = flag.String("pkg", ".", "package to benchmark")
		out       = flag.String("out", "BENCH_PR1.json", "output JSON path")
	)
	flag.Parse()

	args := []string{"test", "-run", "^$", "-bench", *bench, "-benchmem", "-benchtime", *benchtime, *pkg}
	cmd := exec.Command("go", args...)
	cmd.Stderr = os.Stderr
	raw, err := cmd.Output()
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: go %s: %v\n", strings.Join(args, " "), err)
		os.Exit(1)
	}

	rep := report{
		Generated: time.Now().UTC().Format(time.RFC3339),
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		MaxProcs:  runtime.GOMAXPROCS(0),
		Command:   "go " + strings.Join(args, " "),
	}
	for _, line := range strings.Split(string(raw), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		iters, _ := strconv.ParseInt(m[2], 10, 64)
		r := result{Name: m[1], Iterations: iters, Metrics: map[string]float64{}}
		fields := strings.Fields(m[3])
		for i := 0; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			r.Metrics[fields[i+1]] = v
		}
		rep.Benchmarks = append(rep.Benchmarks, r)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines parsed")
		os.Exit(1)
	}

	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %d benchmarks to %s\n", len(rep.Benchmarks), *out)
}
