// Command wfstat is a one-shot metrics dump: it wires every instrumented
// subsystem — the universal construction, the sharded KV front end, the
// fetch-and-cons implementations, the consensus protocols and the lock-based
// baseline — into a single wfstats registry, drives a short mixed workload,
// and prints the registry as an aligned text table (or JSON with -json).
//
// It exists to show the observability layer end to end: which metrics each
// layer exports, what a healthy run looks like, and that reading them costs
// the workload nothing it can measure.
//
//wf:blocking driver: spawns worker goroutines and waits for them with sync.WaitGroup, which is the point of a demo harness
package main

import (
	"flag"
	"fmt"
	"os"
	"sync"

	"waitfree/internal/baseline"
	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/seqspec"
	"waitfree/internal/shard"
	"waitfree/internal/wfstats"
)

func main() {
	var (
		n       = flag.Int("n", 4, "worker processes")
		ops     = flag.Int("ops", 5000, "operations per worker")
		shards  = flag.Int("shards", 4, "shard count for the KV front end")
		facKind = flag.String("fac", "swap", "fetch-and-cons: swap (Figs 4-3/4-4) or cons (Fig 4-5 over CAS consensus)")
		keys    = flag.Int64("keys", 256, "key space for the KV workload")
		readPct = flag.Uint64("readpct", 90, "percentage of gets in the KV mix")
		asJSON  = flag.Bool("json", false, "dump the registry as JSON instead of a text table")
	)
	flag.Parse()

	reg := wfstats.NewRegistry()
	consensus.Instrument(reg)

	mk := func() core.FetchAndCons {
		switch *facKind {
		case "swap":
			f := core.NewSwapFAC()
			f.Instrument(reg)
			return f
		case "cons":
			f := core.NewConsFAC(*n, func() consensus.Object { return consensus.NewCAS(*n) })
			f.Instrument(reg)
			return f
		}
		fmt.Fprintf(os.Stderr, "wfstat: unknown -fac %q (want swap or cons)\n", *facKind)
		os.Exit(2)
		return nil
	}

	kv := shard.NewKV(*shards, *n, mk, core.WithMetrics(reg))
	kv.Instrument(reg)
	runWorkers(*n, *ops, func(pid, i int) {
		key := mix(uint64(pid)<<32|uint64(i)) % uint64(*keys)
		if mix(uint64(i))%100 < *readPct {
			kv.Invoke(pid, seqspec.Op{Kind: "get", Args: []int64{int64(key)}})
		} else {
			kv.Invoke(pid, seqspec.Op{Kind: "put", Args: []int64{int64(key), int64(i)}})
		}
	})

	lock := baseline.NewLocked(seqspec.Counter{})
	lock.Instrument(reg)
	runWorkers(*n, *ops, func(pid, i int) {
		lock.Invoke(pid, seqspec.Op{Kind: "inc"})
	})

	var err error
	if *asJSON {
		err = reg.WriteJSON(os.Stdout)
	} else {
		err = reg.WriteText(os.Stdout)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "wfstat:", err)
		os.Exit(1)
	}
}

func runWorkers(n, per int, body func(pid, i int)) {
	var wg sync.WaitGroup
	for p := 0; p < n; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				body(p, i)
			}
		}()
	}
	wg.Wait()
}

// mix is the splitmix64 finalizer, the workload's cheap stateless generator.
func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}
