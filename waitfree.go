// Package waitfree is a production-quality Go reproduction of Maurice
// Herlihy's "Impossibility and Universality Results for Wait-Free
// Synchronization" (PODC 1988): the consensus hierarchy, the impossibility
// machinery, and — above all — the universal construction that turns any
// deterministic sequential object into a wait-free linearizable concurrent
// object.
//
// The façade exposes the three things a user of the paper's results wants:
//
//   - Consensus objects at every level of the hierarchy
//     (NewCASConsensus, NewAugQueueConsensus, ...).
//   - Fetch-and-cons, the paper's universal list primitive
//     (NewSwapFetchAndCons, NewConsensusFetchAndCons).
//   - The universal construction (New), which wraps a sequential
//     specification (Register, Counter, Queue, ..., or your own
//     seqspec.Object) into a wait-free object driven per-process.
//
// Everything underneath lives in internal/ packages; see DESIGN.md for the
// system inventory and EXPERIMENTS.md for the paper-to-code map.
//
//wf:waitfree
package waitfree

import (
	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/seqspec"
	"waitfree/internal/shard"
	"waitfree/internal/wfstats"
)

// Op is an operation invocation on a wait-free object.
type Op = seqspec.Op

// Object is a deterministic sequential specification; any Object can be
// made wait-free by New.
type Object = seqspec.Object

// Empty is the total-operation response for "nothing there" (deq on an
// empty queue, get of a missing key, ...).
const Empty = seqspec.Empty

// Prebuilt sequential specifications.
type (
	// Register is a single read/write register.
	Register = seqspec.Register
	// Counter supports get, inc and add.
	Counter = seqspec.Counter
	// Queue is a FIFO queue (enq, deq, peek, len).
	Queue = seqspec.Queue
	// Stack is a LIFO stack (push, pop, len).
	Stack = seqspec.Stack
	// Set is a set with insert, contains, removeMin and len.
	Set = seqspec.Set
	// PQueue is a min-priority queue (insert, deleteMin, min, len).
	PQueue = seqspec.PQueue
	// KV is a key-value map (put, get, del, len).
	KV = seqspec.KV
	// Bank is a multi-account bank (deposit, withdraw, transfer, balance,
	// total).
	Bank = seqspec.Bank
	// List is a cons list (cons, head, nth, len).
	List = seqspec.List
)

// Consensus is a one-shot n-process consensus object: every participant
// calls Decide(pid, input) once and all calls return the same
// participant's input.
type Consensus = consensus.Object

// ConsensusFactory builds fresh consensus objects (the universal
// construction uses one per round).
type ConsensusFactory = consensus.Factory

// NewCASConsensus returns n-process consensus from a compare-and-swap
// register (Theorem 7).
func NewCASConsensus(n int) Consensus { return consensus.NewCAS(n) }

// NewTASConsensus returns two-process consensus from test-and-set
// (Theorem 4); pids must be 0 and 1.
func NewTASConsensus() Consensus { return consensus.NewTAS2() }

// NewQueueConsensus returns two-process consensus from a FIFO queue
// (Theorem 9).
func NewQueueConsensus() Consensus { return consensus.NewQueue2() }

// NewAugQueueConsensus returns n-process consensus from an augmented queue
// with peek (Theorem 12).
func NewAugQueueConsensus(n int) Consensus { return consensus.NewAugQueue(n) }

// NewMoveConsensus returns n-process consensus from memory-to-memory move
// (Theorem 15).
func NewMoveConsensus(n int) Consensus { return consensus.NewMove(n) }

// NewMemSwapConsensus returns n-process consensus from memory-to-memory
// swap (Theorem 16).
func NewMemSwapConsensus(n int) Consensus { return consensus.NewMemSwap(n) }

// NewAssignConsensus returns n-process consensus from atomic n-register
// assignment (Theorem 19).
func NewAssignConsensus(n int) Consensus { return consensus.NewAssign(n) }

// NewAssign2PhaseConsensus returns (2m-2)-process consensus from m-register
// assignment (Theorems 20/21).
func NewAssign2PhaseConsensus(m int) Consensus { return consensus.NewAssign2Phase(m) }

// FetchAndCons is the paper's universal list primitive: atomically prepend
// an entry and observe the prior list.
type FetchAndCons = core.FetchAndCons

// Entry is a log entry threaded by FetchAndCons.
type Entry = core.Entry

// Node is an immutable cons cell of the shared log list returned by
// FetchAndCons.
type Node = core.Node

// NewSwapFetchAndCons returns the constant-time fetch-and-cons built from
// one memory-to-memory swap per operation (Figures 4-3/4-4).
func NewSwapFetchAndCons() FetchAndCons { return core.NewSwapFAC() }

// NewConsensusFetchAndCons returns the Figure 4-5 fetch-and-cons for n
// processes, built from at most n rounds of consensus per operation; any
// consensus factory works (Theorem 26: consensus implies universality).
func NewConsensusFetchAndCons(n int, factory ConsensusFactory) FetchAndCons {
	return core.NewConsFAC(n, factory)
}

// Universal is a wait-free linearizable object produced by New. Each
// process pid in [0, n) must call Invoke sequentially; distinct pids may
// invoke concurrently, and no pid can be blocked by the failure or delay of
// any other.
type Universal = core.Universal

// Handle is a per-process front end of a Universal object (Figure 4-1);
// obtain one with Universal.Handle(pid) and give each goroutine its own.
type Handle = core.Handle

// Option configures New.
type Option = core.Option

// WithoutTruncation disables the strongly-wait-free log-truncation
// refinement (Section 4.1); useful for measuring its effect.
func WithoutTruncation() Option { return core.WithoutTruncation() }

// WithSnapshotInterval stores a snapshot only on every k-th entry per
// process, trading Clone cost against replay length: the replay bound
// degrades gracefully from O(n) to O(n·k). k=1 (the default) is the
// paper-faithful strongly-wait-free mode.
func WithSnapshotInterval(k int) Option { return core.WithSnapshotInterval(k) }

// WithoutFastReads routes read-only operations through the full write path
// (cons + snapshot); useful for measuring the read fast path against it.
func WithoutFastReads() Option { return core.WithoutFastReads() }

// WithBatching enables helping-based batch execution on the write path:
// concurrent writers' announced operations are settled by a single
// executor's replay pass — one replay, one snapshot clone, every batch
// member's response published into its entry's result slot — while helped
// writers return without replaying or cloning. Off by default for New;
// NewShardedKV turns it on (pass WithoutBatching to disable there).
func WithBatching() Option { return core.WithBatching() }

// WithoutBatching disables helping-based batch execution; mainly useful to
// switch off NewShardedKV's default.
func WithoutBatching() Option { return core.WithoutBatching() }

// WithLogGC enables low-water-mark log truncation: each front end publishes
// the log index its replays stop at, and each process's every-th write
// computes the collective minimum and severs the decided log below it, so
// Go's collector reclaims the retired tail. Live memory drops from O(total
// ops) to O(n·snapshot interval + n·every). Requires truncation (snapshots
// anchor retention). A process pins the mark at its last published index
// only while attached — from its first Invoke until it calls Detach —
// exactly as a live peer pins a replicated log's Min(); detached pids
// (never arrived, or departed, e.g. returned to a connection lease pool)
// are skipped by the min-scan and re-arm safely on their next Invoke. Off
// by default for New; NewShardedKV turns it on (pass WithoutLogGC to
// disable there).
func WithLogGC(every int) Option { return core.WithLogGC(every) }

// WithoutLogGC disables low-water-mark log truncation; mainly useful to
// switch off NewShardedKV's default.
func WithoutLogGC() Option { return core.WithoutLogGC() }

// Metrics is a wait-free metrics registry (internal/wfstats): counters,
// gauges and power-of-two histograms recorded with single atomic operations
// — no locks, no allocation on the record path — and exported with
// Snapshot, WriteText or WriteJSON. A nil *Metrics is the no-op mode.
type Metrics = wfstats.Registry

// MetricSample is one metric's value in a Metrics snapshot.
type MetricSample = wfstats.Sample

// NewMetrics returns an empty metrics registry.
func NewMetrics() *Metrics { return wfstats.NewRegistry() }

// WithMetrics records the construction's universal.* metrics into reg.
// Instances sharing one registry aggregate (that is how a sharded front end
// sums its shards); WithMetrics(nil) selects the no-op mode, under which
// ReplayStats and FastReads read as zero.
func WithMetrics(reg *Metrics) Option { return core.WithMetrics(reg) }

// New builds a wait-free version of seq for n processes over fac. For a
// sensible default fetch-and-cons, pass NewSwapFetchAndCons() (constant
// time) or NewConsensusFetchAndCons(n, func() Consensus {
// return NewCASConsensus(n) }) (the full Theorem 26 reduction).
func New(seq Object, fac FetchAndCons, n int, opts ...Option) *Universal {
	return core.NewUniversal(seq, fac, n, opts...)
}

// Sharded is a sharded front end: operations are routed by partition key
// across independent Universal instances, one log per shard. Single-key
// operations stay linearizable; cross-shard aggregates (len) are sums of
// per-shard reads taken at different instants. Front ends that lease pids
// to transient clients (a connection pool) should call Detach(pid) when a
// client departs, releasing its log-GC pin on every shard.
type Sharded = shard.Sharded

// NewShardedKV builds a key-value map over shards independent universal
// objects: each key is hashed to one of them, and each has its own
// fetch-and-cons from mk and serves procs processes. For read-dominated,
// key-partitionable workloads this
// scales throughput near-linearly in the shard count. Helping-based write
// batching (WithBatching) is on by default — writers that contend on one
// shard are served by a single replay pass — and so is low-water-mark log
// GC (WithLogGC), keeping each shard's log memory bounded; disable either
// with WithoutBatching / WithoutLogGC.
func NewShardedKV(shards, procs int, mk func() FetchAndCons, opts ...Option) *Sharded {
	withDefaults := append([]Option{WithBatching(), WithLogGC(core.DefaultGCEvery)}, opts...)
	return shard.NewKV(shards, procs, mk, withDefaults...)
}
